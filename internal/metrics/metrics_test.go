package metrics

import (
	"testing"

	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// fakeScenario builds a scenario whose failure and causes are driven by
// output values, so fidelity rules can be tested directly.
//
// Protocol: the program emits one value on stream "state".
//   - value 0: no failure
//   - value 1: failure with cause A
//   - value 2: failure with cause B
//   - value 3: failure with a different signature
func fakeScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:          "fake",
		DefaultParams: scenario.Params{},
		Build: func(m *vm.Machine, p scenario.Params) func(*vm.Thread) {
			in := m.Stream("ctl")
			out := m.Stream("state")
			s := m.Site("s")
			return func(t *vm.Thread) {
				v := t.Input(s, in)
				t.Output(s, out, v)
			}
		},
		Inputs: func(seed int64, p scenario.Params) vm.InputSource {
			return vm.InputSourceFunc(func(string, int) trace.Value { return trace.Int(seed) })
		},
		Failure: scenario.FailureSpec{
			Name: "fake",
			Check: func(v *scenario.RunView) (bool, string) {
				switch state(v) {
				case 1, 2:
					return true, "fake:boom"
				case 3:
					return true, "fake:other"
				}
				return false, ""
			},
		},
		RootCauses: []scenario.RootCause{
			{ID: "A", Present: func(v *scenario.RunView) bool { return state(v) == 1 }},
			{ID: "B", Present: func(v *scenario.RunView) bool { return state(v) == 2 }},
			{ID: "C", Present: func(v *scenario.RunView) bool { return false }},
		},
	}
}

func state(v *scenario.RunView) int64 {
	outs := v.Result.Outputs["state"]
	if len(outs) == 0 {
		return -1
	}
	return outs[0].AsInt()
}

func runState(t *testing.T, s *scenario.Scenario, val int64) *scenario.RunView {
	t.Helper()
	return s.Exec(scenario.ExecOptions{Seed: val})
}

func TestDFSameCause(t *testing.T) {
	s := fakeScenario()
	orig := runState(t, s, 1)
	rep := runState(t, s, 1)
	f := ComputeFidelity(s, orig, rep)
	if f.DF != 1 || !f.SharedCause {
		t.Fatalf("same-cause DF = %v (%+v)", f.DF, f)
	}
}

func TestDFDifferentCauseIsOneOverN(t *testing.T) {
	s := fakeScenario()
	orig := runState(t, s, 1) // cause A
	rep := runState(t, s, 2)  // same signature, cause B
	f := ComputeFidelity(s, orig, rep)
	want := 1.0 / 3.0
	if f.DF != want {
		t.Fatalf("different-cause DF = %v, want %v", f.DF, want)
	}
	if f.SharedCause {
		t.Fatal("claims shared cause incorrectly")
	}
}

func TestDFZeroWhenFailureNotReproduced(t *testing.T) {
	s := fakeScenario()
	orig := runState(t, s, 1)
	rep := runState(t, s, 0) // clean run
	if f := ComputeFidelity(s, orig, rep); f.DF != 0 {
		t.Fatalf("non-failing replay DF = %v, want 0", f.DF)
	}
}

func TestDFZeroOnSignatureMismatch(t *testing.T) {
	s := fakeScenario()
	orig := runState(t, s, 1)
	rep := runState(t, s, 3) // fails with a different signature
	if f := ComputeFidelity(s, orig, rep); f.DF != 0 {
		t.Fatalf("different-signature DF = %v, want 0", f.DF)
	}
}

func TestDFZeroOnNilReplay(t *testing.T) {
	s := fakeScenario()
	orig := runState(t, s, 1)
	if f := ComputeFidelity(s, orig, nil); f.DF != 0 {
		t.Fatalf("nil replay DF = %v, want 0", f.DF)
	}
}

func TestDFCleanOriginal(t *testing.T) {
	s := fakeScenario()
	orig := runState(t, s, 0)
	if f := ComputeFidelity(s, orig, runState(t, s, 0)); f.DF != 1 {
		t.Fatalf("clean/clean DF = %v, want 1", f.DF)
	}
	if f := ComputeFidelity(s, orig, runState(t, s, 1)); f.DF != 0 {
		t.Fatalf("clean/failing DF = %v, want 0", f.DF)
	}
}

func TestEfficiency(t *testing.T) {
	if de := Efficiency(100, 200); de != 0.5 {
		t.Fatalf("DE = %v, want 0.5", de)
	}
	if de := Efficiency(300, 100); de != 3.0 {
		t.Fatalf("DE = %v, want 3.0 (synthesized shorter execution)", de)
	}
	if de := Efficiency(100, 0); de != 0 {
		t.Fatalf("zero tool time DE = %v, want 0", de)
	}
}

func TestUtilityIsProduct(t *testing.T) {
	f := Fidelity{DF: 0.5}
	u := ComputeUtility(f, 2.0)
	if u.DU != 1.0 || u.DF != 0.5 || u.DE != 2.0 {
		t.Fatalf("DU = %+v", u)
	}
}

func TestFidelityStringIsInformative(t *testing.T) {
	s := fakeScenario()
	f := ComputeFidelity(s, runState(t, s, 1), runState(t, s, 2))
	str := f.String()
	if str == "" {
		t.Fatal("empty fidelity rendering")
	}
}

// Package metrics implements the paper's §3.2 evaluation measures for
// replay-debugging systems:
//
//   - debugging fidelity (DF): 1 when the replay reproduces the original
//     failure and the original root cause; 1/n when it reproduces the
//     failure through one of the n possible root causes but not the
//     original; 0 when the failure is not reproduced at all;
//   - debugging efficiency (DE): the original execution's duration divided
//     by the tool's total time to reproduce the failure, including every
//     inference attempt — above 1 only when synthesis finds a shorter
//     execution fast enough to amortize the search;
//   - debugging utility (DU): DF × DE.
//
// All durations are virtual cycles, so the metrics are deterministic.
package metrics

import (
	"fmt"
	"strings"

	"debugdet/internal/scenario"
)

// Fidelity is a debugging-fidelity verdict with its evidence.
type Fidelity struct {
	// OrigFailed and signatures identify the failure in both runs.
	OrigFailed   bool
	OrigSig      string
	ReplayFailed bool
	ReplaySig    string
	// OrigCauses and ReplayCauses are the root causes present in each run.
	OrigCauses   []string
	ReplayCauses []string
	// SharedCause reports whether some original cause reappears in the
	// replay.
	SharedCause bool
	// PossibleCauses is n in the 1/n rule.
	PossibleCauses int
	// DF is the debugging fidelity in [0, 1].
	DF float64
}

// String renders the verdict.
func (f Fidelity) String() string {
	return fmt.Sprintf("DF=%.3f orig=[%s] replay=[%s] failure=%v/%v",
		f.DF, strings.Join(f.OrigCauses, ","), strings.Join(f.ReplayCauses, ","),
		f.OrigFailed, f.ReplayFailed)
}

// ComputeFidelity evaluates DF for a replay of an original run. A nil
// replay view means the tool produced no execution at all (DF 0).
func ComputeFidelity(s *scenario.Scenario, orig, rep *scenario.RunView) Fidelity {
	f := Fidelity{PossibleCauses: len(s.RootCauses)}
	f.OrigFailed, f.OrigSig = s.CheckFailure(orig)
	f.OrigCauses = s.PresentCauses(orig)
	if rep == nil {
		return f
	}
	f.ReplayFailed, f.ReplaySig = s.CheckFailure(rep)
	f.ReplayCauses = s.PresentCauses(rep)

	if !f.OrigFailed {
		// Degenerate case (no failure to chase): fidelity is 1 exactly
		// when the replay is also failure-free.
		if !f.ReplayFailed {
			f.DF = 1
		}
		return f
	}
	if !f.ReplayFailed || f.ReplaySig != f.OrigSig {
		// The failure was not reproduced: the replay is useless for
		// debugging this bug (§3.2).
		return f
	}
	for _, oc := range f.OrigCauses {
		for _, rc := range f.ReplayCauses {
			if oc == rc {
				f.SharedCause = true
			}
		}
	}
	if f.SharedCause {
		f.DF = 1
		return f
	}
	if f.PossibleCauses > 0 {
		f.DF = 1 / float64(f.PossibleCauses)
	}
	return f
}

// Efficiency computes DE: the original duration over the tool's total
// reproduction time (all attempts plus the accepted replay). Both in
// virtual cycles; zero tool time yields DE 0 to keep failed replays inert.
func Efficiency(origCycles, toolCycles uint64) float64 {
	if toolCycles == 0 {
		return 0
	}
	return float64(origCycles) / float64(toolCycles)
}

// Utility is the combined DU = DF × DE (§3.2).
type Utility struct {
	DF float64
	DE float64
	DU float64
}

// ComputeUtility combines fidelity and efficiency.
func ComputeUtility(f Fidelity, de float64) Utility {
	return Utility{DF: f.DF, DE: de, DU: f.DF * de}
}

// Package trace defines the execution-event model shared by the virtual
// machine, the recorders, the replayers and the analysis passes, together
// with a compact binary codec for persisting event logs.
//
// An execution of a program on the deterministic VM is fully described by
// the ordered sequence of events it emits: every scheduling point (memory
// access, synchronization operation, message send/receive, input, output)
// produces exactly one event. A log that contains every event therefore
// pins down the execution completely; the relaxed determinism models of the
// paper correspond to persisting progressively smaller projections of this
// sequence.
package trace

import "fmt"

// ThreadID identifies a virtual thread within one machine. The main thread
// is always 0; children are numbered in spawn order, which is deterministic.
type ThreadID int32

// SiteID identifies a static program location (an instrumentation site).
// Sites are registered by name in a SiteTable; IDs are dense indexes.
type SiteID uint32

// NoSite is the SiteID used for machine-internal events that have no
// corresponding program location.
const NoSite SiteID = 0

// ObjID identifies a dynamic object: a memory cell, mutex, channel or
// input/output stream, depending on the event kind. Object namespaces are
// independent per kind.
type ObjID uint64

// EventKind enumerates the observable operation classes of the VM.
type EventKind uint8

// Event kinds. The comment after each kind states what Obj and Val hold.
const (
	EvNone     EventKind = iota
	EvSpawn              // Obj: child ThreadID; Val: child name
	EvExit               // thread terminated normally
	EvLoad               // Obj: cell; Val: value read
	EvStore              // Obj: cell; Val: value written
	EvLock               // Obj: mutex
	EvUnlock             // Obj: mutex
	EvSend               // Obj: channel; Val: value sent
	EvRecv               // Obj: channel; Val: value received
	EvInput              // Obj: stream; Val: value obtained from environment
	EvOutput             // Obj: stream; Val: value emitted
	EvYield              // voluntary scheduling point
	EvSleep              // timed pause (duration is not part of the event)
	EvObserve            // Obj: probe id; Val: observed value (invariant probe)
	EvFail               // Val: failure message (program-detected failure)
	EvCrash              // Val: crash message (fault, e.g. bounds violation)
	EvDeadlock           // machine-detected deadlock (emitted on main thread)

	// Disk kinds (DESIGN.md §7): operations on a simulated durable device.
	// Like every other kind, Val is exactly the operation's result value, so
	// feed derivations and value replay treat disks uniformly with memory.
	EvDiskWrite   // Obj: disk; Val: record appended (bytes as persisted)
	EvDiskRead    // Obj: disk; Val: record read back (bytes, possibly torn)
	EvDiskFsync   // Obj: disk; Val: records made durable by this fsync
	EvDiskBarrier // Obj: disk; Val: records durable after the full barrier
	EvDiskCrash   // Obj: disk; Val: records surviving the crash (volatile tail dropped)

	kindCount
)

var kindNames = [...]string{
	EvNone:        "none",
	EvSpawn:       "spawn",
	EvExit:        "exit",
	EvLoad:        "load",
	EvStore:       "store",
	EvLock:        "lock",
	EvUnlock:      "unlock",
	EvSend:        "send",
	EvRecv:        "recv",
	EvInput:       "input",
	EvOutput:      "output",
	EvYield:       "yield",
	EvSleep:       "sleep",
	EvObserve:     "observe",
	EvFail:        "fail",
	EvCrash:       "crash",
	EvDeadlock:    "deadlock",
	EvDiskWrite:   "disk-write",
	EvDiskRead:    "disk-read",
	EvDiskFsync:   "disk-fsync",
	EvDiskBarrier: "disk-barrier",
	EvDiskCrash:   "disk-crash",
}

// String returns the lower-case name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether the kind is one of the declared event kinds.
// Decoders use it to reject corrupt kind bytes instead of constructing
// events no replayer could interpret.
func (k EventKind) Valid() bool { return k < kindCount }

// IsSync reports whether the kind establishes happens-before edges between
// threads (lock/unlock, send/recv, spawn/exit).
func (k EventKind) IsSync() bool {
	//lint:exhaustive-default the six sync kinds are the complete happens-before set; every other kind is thread-local
	switch k {
	case EvLock, EvUnlock, EvSend, EvRecv, EvSpawn, EvExit:
		return true
	}
	return false
}

// IsAccess reports whether the kind is a shared-memory access.
func (k EventKind) IsAccess() bool { return k == EvLoad || k == EvStore }

// IsTerminal reports whether the kind ends an execution abnormally.
func (k EventKind) IsTerminal() bool {
	return k == EvFail || k == EvCrash || k == EvDeadlock
}

// Taint is a small bit set describing the provenance of a value: which
// input classes it was (transitively) derived from. It powers the
// control/data-plane classifier.
type Taint uint8

// Taint bits.
const (
	TaintNone    Taint = 0
	TaintData    Taint = 1 << iota // derived from bulk data input (payloads)
	TaintControl                   // derived from control input (config, metadata)
	TaintEnv                       // derived from environment events (timers, faults)
)

// String renders the taint set compactly, e.g. "DC" or "-".
func (t Taint) String() string {
	if t == TaintNone {
		return "-"
	}
	s := ""
	if t&TaintData != 0 {
		s += "D"
	}
	if t&TaintControl != 0 {
		s += "C"
	}
	if t&TaintEnv != 0 {
		s += "E"
	}
	return s
}

// Event is one observable VM operation. Events are value types; logs are
// slices of events.
type Event struct {
	Seq   uint64    // position in the global total order, starting at 0
	Time  uint64    // virtual time (cycles) at which the op completed
	TID   ThreadID  // thread that performed the op
	Kind  EventKind // operation class
	Site  SiteID    // static program location, NoSite for machine events
	Obj   ObjID     // object acted on (see kind docs)
	Val   Value     // payload (see kind docs)
	Taint Taint     // provenance of Val at the time of the op
}

// String renders a single event for debugging and test failure messages.
func (e Event) String() string {
	return fmt.Sprintf("#%d t=%d tid=%d %s site=%d obj=%d val=%s taint=%s",
		e.Seq, e.Time, e.TID, e.Kind, e.Site, e.Obj, e.Val, e.Taint)
}

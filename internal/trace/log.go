package trace

import (
	"fmt"
	"sort"
)

// SiteTable maps static program-location names to dense SiteIDs. ID 0 is
// reserved for NoSite. Registration order determines IDs, and workloads
// register sites deterministically, so tables are stable across runs.
type SiteTable struct {
	names []string
	ids   map[string]SiteID
}

// siteTablePresize is the initial capacity of a table's name list and ID
// map. Workloads register a few dozen sites; pre-sizing keeps Register off
// the grow path for every machine the search engine spins up.
const siteTablePresize = 32

// NewSiteTable returns an empty table with NoSite pre-registered.
func NewSiteTable() *SiteTable {
	t := &SiteTable{
		names: make([]string, 1, siteTablePresize),
		ids:   make(map[string]SiteID, siteTablePresize),
	}
	t.names[0] = "" // NoSite
	return t
}

// Register returns the ID for name, assigning the next free ID on first use.
func (t *SiteTable) Register(name string) SiteID {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := SiteID(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Lookup returns the ID for name and whether it is registered.
func (t *SiteTable) Lookup(name string) (SiteID, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the name for id, or "" if unknown.
func (t *SiteTable) Name(id SiteID) string {
	if int(id) < len(t.names) {
		return t.names[id]
	}
	return ""
}

// Len returns the number of registered sites including NoSite.
func (t *SiteTable) Len() int { return len(t.names) }

// Names returns a copy of the name list indexed by SiteID. Callers that
// only need the count should use Len, and per-ID access should use Name:
// both avoid the copy.
func (t *SiteTable) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Clone returns an independent copy of the table.
func (t *SiteTable) Clone() *SiteTable {
	c := &SiteTable{
		names: make([]string, len(t.names)),
		ids:   make(map[string]SiteID, len(t.ids)),
	}
	copy(c.names, t.names)
	for k, v := range t.ids {
		c.ids[k] = v
	}
	return c
}

// Header carries the identity of the execution a log describes.
type Header struct {
	Scenario string            // scenario name
	Model    string            // determinism model the log was recorded under
	Seed     int64             // scheduler seed of the original execution
	Params   map[string]int64  // scenario parameters
	Labels   map[string]string // free-form annotations (e.g. recorder config)
}

// cloneParams deep-copies the mutable header maps.
func (h Header) clone() Header {
	c := h
	if h.Params != nil {
		c.Params = make(map[string]int64, len(h.Params))
		for k, v := range h.Params {
			c.Params[k] = v
		}
	}
	if h.Labels != nil {
		c.Labels = make(map[string]string, len(h.Labels))
		for k, v := range h.Labels {
			c.Labels[k] = v
		}
	}
	return c
}

// Log is a recorded projection of an execution: a header, the site table in
// effect, and an event sequence. Depending on the determinism model the
// events may be the full sequence or a sparse subset.
type Log struct {
	Header Header
	Sites  *SiteTable
	Events []Event
}

// NewLog returns an empty log with the given header and a fresh site table.
func NewLog(h Header) *Log {
	return &Log{Header: h, Sites: NewSiteTable()}
}

// Append adds an event to the log.
func (l *Log) Append(e Event) { l.Events = append(l.Events, e) }

// Len returns the number of events.
func (l *Log) Len() int { return len(l.Events) }

// Clone returns a deep copy of the log (events are value types; the site
// table and header maps are copied).
func (l *Log) Clone() *Log {
	c := &Log{Header: l.Header.clone(), Sites: l.Sites.Clone()}
	c.Events = make([]Event, len(l.Events))
	copy(c.Events, l.Events)
	return c
}

// Schedule returns the sequence of thread IDs in event order: the total
// order of scheduling decisions. Replaying this sequence on the same
// program and inputs reproduces the execution exactly.
func (l *Log) Schedule() []ThreadID {
	out := make([]ThreadID, len(l.Events))
	for i, e := range l.Events {
		out[i] = e.TID
	}
	return out
}

// Outputs returns all output events grouped by stream object, in order.
func (l *Log) Outputs() map[ObjID][]Value {
	out := make(map[ObjID][]Value)
	for _, e := range l.Events {
		if e.Kind == EvOutput {
			out[e.Obj] = append(out[e.Obj], e.Val)
		}
	}
	return out
}

// Inputs returns all input events grouped by stream object, in order.
func (l *Log) Inputs() map[ObjID][]Value {
	in := make(map[ObjID][]Value)
	for _, e := range l.Events {
		if e.Kind == EvInput {
			in[e.Obj] = append(in[e.Obj], e.Val)
		}
	}
	return in
}

// Terminal returns the first terminal event (fail/crash/deadlock) and true,
// or a zero event and false if the execution completed normally.
func (l *Log) Terminal() (Event, bool) {
	for _, e := range l.Events {
		if e.Kind.IsTerminal() {
			return e, true
		}
	}
	return Event{}, false
}

// Duration returns the virtual time of the last event, i.e. the length of
// the execution in cycles. Empty logs have duration 0.
func (l *Log) Duration() uint64 {
	if len(l.Events) == 0 {
		return 0
	}
	return l.Events[len(l.Events)-1].Time
}

// FilterKind returns the events of the given kinds, preserving order.
func (l *Log) FilterKind(kinds ...EventKind) []Event {
	want := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range l.Events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// ByThread splits the events per thread, preserving per-thread order.
func (l *Log) ByThread() map[ThreadID][]Event {
	out := make(map[ThreadID][]Event)
	for _, e := range l.Events {
		out[e.TID] = append(out[e.TID], e)
	}
	return out
}

// Threads returns the sorted set of thread IDs appearing in the log.
func (l *Log) Threads() []ThreadID {
	seen := make(map[ThreadID]bool)
	for _, e := range l.Events {
		seen[e.TID] = true
	}
	out := make([]ThreadID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SiteName is a convenience that resolves a site ID against the log's table.
func (l *Log) SiteName(id SiteID) string {
	if l.Sites == nil {
		return ""
	}
	return l.Sites.Name(id)
}

// Summary returns a short human-readable description of the log.
func (l *Log) Summary() string {
	term := "ok"
	if e, bad := l.Terminal(); bad {
		term = fmt.Sprintf("%s(%s)", e.Kind, e.Val.AsString())
	}
	return fmt.Sprintf("%s/%s seed=%d events=%d dur=%d %s",
		l.Header.Scenario, l.Header.Model, l.Header.Seed, len(l.Events), l.Duration(), term)
}

// OutputsEqual reports whether two logs produced identical per-stream
// output sequences.
func OutputsEqual(a, b *Log) bool {
	oa, ob := a.Outputs(), b.Outputs()
	if len(oa) != len(ob) {
		return false
	}
	for obj, va := range oa {
		vb, ok := ob[obj]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if !va[i].Equal(vb[i]) {
				return false
			}
		}
	}
	return true
}

// EventsEqual reports whether two logs contain identical event sequences,
// ignoring the Time field when ignoreTime is set (recording overhead
// perturbs virtual time without changing the logical execution).
func EventsEqual(a, b *Log, ignoreTime bool) bool {
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ignoreTime {
			ea.Time, eb.Time = 0, 0
		}
		if ea.Seq != eb.Seq || ea.TID != eb.TID || ea.Kind != eb.Kind ||
			ea.Site != eb.Site || ea.Obj != eb.Obj || ea.Taint != eb.Taint ||
			!ea.Val.Equal(eb.Val) || ea.Time != eb.Time {
			return false
		}
	}
	return true
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Binary log format
//
//	magic   "DDTL" (4 bytes)
//	version u8
//	header  scenario, model: string; seed: zigzag varint;
//	        params: uvarint count, then (string, zigzag varint) pairs
//	        labels: uvarint count, then (string, string) pairs
//	sites   uvarint count, then names (NoSite's empty name included)
//	events  uvarint count, then per event:
//	        dSeq, dTime (uvarint deltas), tid (zigzag), kind u8,
//	        site uvarint, obj uvarint, taint u8, value
//	value   kind u8, then payload (zigzag varint / uvarint-prefixed bytes)
//
// Sequence and time fields are delta-encoded: logs are monotone in both, so
// deltas are tiny and the format approaches one byte per field.

const (
	logMagic   = "DDTL"
	logVersion = 1
)

// Encoding errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic, not a debugdet log")
	ErrBadVersion = errors.New("trace: unsupported log version")
	ErrCorrupt    = errors.New("trace: corrupt log")
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Encode writes the log in the binary format and returns the number of
// bytes written.
func Encode(w io.Writer, l *Log) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(logMagic); err != nil {
		return cw.n, err
	}
	if err := bw.WriteByte(logVersion); err != nil {
		return cw.n, err
	}
	writeString(bw, l.Header.Scenario)
	writeString(bw, l.Header.Model)
	writeVarint(bw, l.Header.Seed)

	// Maps are written in sorted key order so encoding is deterministic.
	pkeys := make([]string, 0, len(l.Header.Params))
	for k := range l.Header.Params {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	writeUvarint(bw, uint64(len(pkeys)))
	for _, k := range pkeys {
		writeString(bw, k)
		writeVarint(bw, l.Header.Params[k])
	}
	lkeys := make([]string, 0, len(l.Header.Labels))
	for k := range l.Header.Labels {
		lkeys = append(lkeys, k)
	}
	sort.Strings(lkeys)
	writeUvarint(bw, uint64(len(lkeys)))
	for _, k := range lkeys {
		writeString(bw, k)
		writeString(bw, l.Header.Labels[k])
	}

	// Iterate the table by index rather than copying it out: Encode
	// runs once per recorded log, including inside EncodedSize on the
	// recording overhead path.
	nSites := l.Sites.Len()
	writeUvarint(bw, uint64(nSites))
	for i := 0; i < nSites; i++ {
		writeString(bw, l.Sites.Name(SiteID(i)))
	}

	writeUvarint(bw, uint64(len(l.Events)))
	var prevSeq, prevTime uint64
	for i := range l.Events {
		e := &l.Events[i]
		writeUvarint(bw, e.Seq-prevSeq)
		writeUvarint(bw, e.Time-prevTime)
		prevSeq, prevTime = e.Seq, e.Time
		writeVarint(bw, int64(e.TID))
		bw.WriteByte(byte(e.Kind))
		writeUvarint(bw, uint64(e.Site))
		writeUvarint(bw, uint64(e.Obj))
		bw.WriteByte(byte(e.Taint))
		writeValue(bw, e.Val)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Decode reads a log in the binary format.
func Decode(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != logMagic {
		return nil, ErrBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != logVersion {
		return nil, fmt.Errorf("%w: got %d want %d", ErrBadVersion, ver, logVersion)
	}
	l := &Log{Sites: NewSiteTable()}
	if l.Header.Scenario, err = readString(br); err != nil {
		return nil, err
	}
	if l.Header.Model, err = readString(br); err != nil {
		return nil, err
	}
	if l.Header.Seed, err = readVarint(br); err != nil {
		return nil, err
	}
	np, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if np > 0 {
		l.Header.Params = make(map[string]int64, np)
		for i := uint64(0); i < np; i++ {
			k, err := readString(br)
			if err != nil {
				return nil, err
			}
			v, err := readVarint(br)
			if err != nil {
				return nil, err
			}
			l.Header.Params[k] = v
		}
	}
	nl, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nl > 0 {
		l.Header.Labels = make(map[string]string, nl)
		for i := uint64(0); i < nl; i++ {
			k, err := readString(br)
			if err != nil {
				return nil, err
			}
			v, err := readString(br)
			if err != nil {
				return nil, err
			}
			l.Header.Labels[k] = v
		}
	}

	ns, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if ns == 0 {
		return nil, fmt.Errorf("%w: empty site table", ErrCorrupt)
	}
	for i := uint64(0); i < ns; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			if name != "" {
				return nil, fmt.Errorf("%w: site 0 must be unnamed", ErrCorrupt)
			}
			continue
		}
		l.Sites.Register(name)
	}

	ne, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxEvents = 1 << 30
	if ne > maxEvents {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrCorrupt, ne)
	}
	l.Events = make([]Event, 0, ne)
	var prevSeq, prevTime uint64
	for i := uint64(0); i < ne; i++ {
		var e Event
		dSeq, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		dTime, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		prevSeq += dSeq
		prevTime += dTime
		e.Seq, e.Time = prevSeq, prevTime
		tid, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		e.TID = ThreadID(tid)
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if EventKind(kb) >= kindCount {
			return nil, fmt.Errorf("%w: bad event kind %d", ErrCorrupt, kb)
		}
		e.Kind = EventKind(kb)
		site, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		e.Site = SiteID(site)
		obj, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		e.Obj = ObjID(obj)
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		e.Taint = Taint(tb)
		if e.Val, err = readValue(br); err != nil {
			return nil, err
		}
		l.Events = append(l.Events, e)
	}
	return l, nil
}

// EncodedSize returns the size in bytes Encode would produce, without
// allocating the output.
func EncodedSize(l *Log) int64 {
	n, _ := Encode(io.Discard, l)
	return n
}

// WriteValue writes one value in the binary format. It is shared with the
// checkpoint codec, which embeds values in snapshot sections.
func WriteValue(w *bufio.Writer, v Value) { writeValue(w, v) }

// ReadValue reads one value written by WriteValue.
func ReadValue(r *bufio.Reader) (Value, error) { return readValue(r) }

func writeValue(w *bufio.Writer, v Value) {
	w.WriteByte(byte(v.Kind))
	switch v.Kind {
	case VNil:
	case VInt, VBool:
		writeVarint(w, v.Int)
	case VString:
		writeString(w, v.Str)
	case VBytes:
		writeUvarint(w, uint64(len(v.Bytes)))
		w.Write(v.Bytes)
	}
}

func readValue(r *bufio.Reader) (Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return Nil, err
	}
	v := Value{Kind: ValueKind(kb)}
	switch v.Kind {
	case VNil:
	case VInt, VBool:
		if v.Int, err = readVarint(r); err != nil {
			return Nil, err
		}
	case VString:
		if v.Str, err = readString(r); err != nil {
			return Nil, err
		}
	case VBytes:
		n, err := readUvarint(r)
		if err != nil {
			return Nil, err
		}
		const maxBlob = 64 << 20
		if n > maxBlob {
			return Nil, fmt.Errorf("%w: implausible blob size %d", ErrCorrupt, n)
		}
		v.Bytes = make([]byte, n)
		if _, err := io.ReadFull(r, v.Bytes); err != nil {
			return Nil, err
		}
	default:
		return Nil, fmt.Errorf("%w: bad value kind %d", ErrCorrupt, kb)
	}
	return v, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func readVarint(r *bufio.Reader) (int64, error) {
	v, err := binary.ReadVarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	const maxString = 16 << 20
	if n > maxString {
		return "", fmt.Errorf("%w: implausible string size %d", ErrCorrupt, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return string(b), nil
}

package trace

import (
	"encoding/json"
	"io"
)

// jsonEvent is the JSON wire form of an Event, with site names resolved and
// values rendered in a self-describing way.
type jsonEvent struct {
	Seq   uint64 `json:"seq"`
	Time  uint64 `json:"time"`
	TID   int32  `json:"tid"`
	Kind  string `json:"kind"`
	Site  string `json:"site,omitempty"`
	Obj   uint64 `json:"obj,omitempty"`
	Val   any    `json:"val,omitempty"`
	Taint string `json:"taint,omitempty"`
}

type jsonLog struct {
	Scenario string            `json:"scenario"`
	Model    string            `json:"model"`
	Seed     int64             `json:"seed"`
	Params   map[string]int64  `json:"params,omitempty"`
	Labels   map[string]string `json:"labels,omitempty"`
	Events   []jsonEvent       `json:"events"`
}

// WriteJSON writes a human-readable JSON rendering of the log. It is an
// export format only; the binary codec is the canonical round-trippable one.
func WriteJSON(w io.Writer, l *Log) error {
	jl := jsonLog{
		Scenario: l.Header.Scenario,
		Model:    l.Header.Model,
		Seed:     l.Header.Seed,
		Params:   l.Header.Params,
		Labels:   l.Header.Labels,
		Events:   make([]jsonEvent, 0, len(l.Events)),
	}
	for _, e := range l.Events {
		je := jsonEvent{
			Seq:  e.Seq,
			Time: e.Time,
			TID:  int32(e.TID),
			Kind: e.Kind.String(),
			Obj:  uint64(e.Obj),
		}
		if e.Site != NoSite {
			je.Site = l.SiteName(e.Site)
		}
		switch e.Val.Kind {
		case VNil:
		case VInt:
			je.Val = e.Val.Int
		case VBool:
			je.Val = e.Val.Int != 0
		case VString:
			je.Val = e.Val.Str
		case VBytes:
			je.Val = string(e.Val.Bytes)
		}
		if e.Taint != TaintNone {
			je.Taint = e.Taint.String()
		}
		jl.Events = append(jl.Events, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jl)
}

package trace

import (
	"fmt"
	"strconv"
)

// ValueKind enumerates the dynamic types a VM value can take. The VM is
// deliberately first-order: integers, booleans, strings and byte blobs are
// enough to express the workloads while keeping logs compact and
// comparisons deterministic.
type ValueKind uint8

// Value kinds.
const (
	VNil ValueKind = iota
	VInt
	VBool
	VString
	VBytes
)

// Value is a first-order VM value: a tagged union over nil, int64, bool,
// string and []byte. The zero Value is nil.
type Value struct {
	Kind  ValueKind
	Int   int64  // VInt (and VBool: 0/1)
	Str   string // VString
	Bytes []byte // VBytes
}

// Nil is the nil value.
var Nil = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: VInt, Int: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{Kind: VBool, Int: i}
}

// String_ returns a string value. (Named with a trailing underscore because
// String is the fmt.Stringer method on Value.)
func String_(s string) Value { return Value{Kind: VString, Str: s} }

// Str is a short alias for String_.
func Str(s string) Value { return String_(s) }

// Bytes_ returns a byte-blob value. The slice is not copied; callers must
// not mutate it after handing it to the VM.
func Bytes_(b []byte) Value { return Value{Kind: VBytes, Bytes: b} }

// AsInt returns the integer payload, coercing booleans; other kinds yield 0.
func (v Value) AsInt() int64 {
	if v.Kind == VInt || v.Kind == VBool {
		return v.Int
	}
	return 0
}

// AsBool returns the boolean payload; non-bool kinds are truthy if nonzero
// or nonempty.
func (v Value) AsBool() bool {
	//lint:exhaustive-default VNil is falsy: the fallthrough return false is its deliberate truthiness
	switch v.Kind {
	case VBool, VInt:
		return v.Int != 0
	case VString:
		return v.Str != ""
	case VBytes:
		return len(v.Bytes) != 0
	}
	return false
}

// AsString returns the string payload; VBytes is converted, other kinds are
// formatted.
func (v Value) AsString() string {
	//lint:exhaustive-default VNil renders as the empty string via the fallthrough
	switch v.Kind {
	case VString:
		return v.Str
	case VBytes:
		return string(v.Bytes)
	case VInt:
		return strconv.FormatInt(v.Int, 10)
	case VBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// IsNil reports whether the value is the nil value.
func (v Value) IsNil() bool { return v.Kind == VNil }

// Size returns the payload size in bytes, used by the data-rate profiler
// and by recorders to account log volume.
func (v Value) Size() int {
	switch v.Kind {
	case VNil:
		return 0
	case VInt, VBool:
		return 8
	case VString:
		return len(v.Str)
	case VBytes:
		return len(v.Bytes)
	}
	return 0
}

// Equal reports deep equality of two values. Integer and boolean values of
// equal numeric payload compare equal only within the same kind.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case VNil:
		return true
	case VInt, VBool:
		return v.Int == o.Int
	case VString:
		return v.Str == o.Str
	case VBytes:
		if len(v.Bytes) != len(o.Bytes) {
			return false
		}
		for i := range v.Bytes {
			if v.Bytes[i] != o.Bytes[i] {
				return false
			}
		}
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.Kind {
	case VNil:
		return "nil"
	case VInt:
		return strconv.FormatInt(v.Int, 10)
	case VBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case VString:
		return strconv.Quote(v.Str)
	case VBytes:
		if len(v.Bytes) > 16 {
			return fmt.Sprintf("bytes[%d]", len(v.Bytes))
		}
		return fmt.Sprintf("%q", v.Bytes)
	}
	return "?"
}

package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleLog() *Log {
	l := NewLog(Header{
		Scenario: "sample",
		Model:    "perfect",
		Seed:     42,
		Params:   map[string]int64{"clients": 3, "rows": 100},
		Labels:   map[string]string{"note": "unit test"},
	})
	sA := l.Sites.Register("a.load")
	sB := l.Sites.Register("b.store")
	l.Append(Event{Seq: 0, Time: 10, TID: 0, Kind: EvSpawn, Obj: 1, Val: Str("w")})
	l.Append(Event{Seq: 1, Time: 25, TID: 1, Kind: EvLoad, Site: sA, Obj: 7, Val: Int(5)})
	l.Append(Event{Seq: 2, Time: 40, TID: 1, Kind: EvStore, Site: sB, Obj: 7, Val: Int(6), Taint: TaintData})
	l.Append(Event{Seq: 3, Time: 55, TID: 0, Kind: EvOutput, Obj: 0, Val: Str("done")})
	l.Append(Event{Seq: 4, Time: 70, TID: 1, Kind: EvExit})
	l.Append(Event{Seq: 5, Time: 90, TID: 0, Kind: EvFail, Val: Str("boom")})
	return l
}

func TestCodecRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	n, err := Encode(&buf, l)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !EventsEqual(l, got, false) {
		t.Fatal("events did not round-trip")
	}
	if got.Header.Scenario != "sample" || got.Header.Seed != 42 {
		t.Fatalf("header did not round-trip: %+v", got.Header)
	}
	if got.Header.Params["rows"] != 100 {
		t.Fatal("params did not round-trip")
	}
	if got.Header.Labels["note"] != "unit test" {
		t.Fatal("labels did not round-trip")
	}
	if got.SiteName(1) != "a.load" || got.SiteName(2) != "b.store" {
		t.Fatal("site table did not round-trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("Decode accepted empty input")
	}
	// Valid magic, bad version.
	if _, err := Decode(bytes.NewReader([]byte{'D', 'D', 'T', 'L', 99})); err == nil {
		t.Fatal("Decode accepted bad version")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if _, err := Encode(&buf, l); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("Decode accepted truncation at %d bytes", cut)
		}
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Nil
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return String_(string(b))
	default:
		b := make([]byte, r.Intn(64))
		r.Read(b)
		return Bytes_(b)
	}
}

func randomLog(r *rand.Rand) *Log {
	l := NewLog(Header{Scenario: "q", Model: "m", Seed: r.Int63()})
	nSites := 1 + r.Intn(8)
	sites := make([]SiteID, nSites)
	for i := range sites {
		sites[i] = l.Sites.Register(string(rune('a' + i)))
	}
	n := r.Intn(200)
	var seq, tm uint64
	for i := 0; i < n; i++ {
		seq += uint64(1 + r.Intn(3))
		tm += uint64(r.Intn(100))
		l.Append(Event{
			Seq:   seq,
			Time:  tm,
			TID:   ThreadID(r.Intn(6)),
			Kind:  EventKind(1 + r.Intn(int(kindCount)-1)),
			Site:  sites[r.Intn(nSites)],
			Obj:   ObjID(r.Intn(1000)),
			Val:   randomValue(r),
			Taint: Taint(r.Intn(8)),
		})
	}
	return l
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLog(r)
		var buf bytes.Buffer
		if _, err := Encode(&buf, l); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return EventsEqual(l, got, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValueEqualReflexiveSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		if !a.Equal(a) {
			return false
		}
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogProjections(t *testing.T) {
	l := sampleLog()
	if term, ok := l.Terminal(); !ok || term.Kind != EvFail {
		t.Fatalf("Terminal = %v/%v, want fail", term, ok)
	}
	outs := l.Outputs()
	if len(outs[0]) != 1 || outs[0][0].AsString() != "done" {
		t.Fatalf("Outputs = %v", outs)
	}
	sched := l.Schedule()
	want := []ThreadID{0, 1, 1, 0, 1, 0}
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("Schedule[%d] = %d, want %d", i, sched[i], want[i])
		}
	}
	threads := l.Threads()
	if len(threads) != 2 || threads[0] != 0 || threads[1] != 1 {
		t.Fatalf("Threads = %v", threads)
	}
	if l.Duration() != 90 {
		t.Fatalf("Duration = %d, want 90", l.Duration())
	}
	byT := l.ByThread()
	if len(byT[1]) != 3 {
		t.Fatalf("thread 1 has %d events, want 3", len(byT[1]))
	}
}

func TestOutputsEqual(t *testing.T) {
	a, b := sampleLog(), sampleLog()
	if !OutputsEqual(a, b) {
		t.Fatal("identical logs reported unequal outputs")
	}
	b.Events[3].Val = Str("different")
	if OutputsEqual(a, b) {
		t.Fatal("different outputs reported equal")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 || !Bool(true).AsBool() || Str("x").AsString() != "x" {
		t.Fatal("basic accessors broken")
	}
	if Bool(true).AsInt() != 1 {
		t.Fatal("bool coercion broken")
	}
	if !Nil.IsNil() || Int(0).IsNil() {
		t.Fatal("IsNil broken")
	}
	if Int(5).Equal(Bool(true)) {
		t.Fatal("cross-kind equality must be false")
	}
	if Str("42").AsInt() != 0 {
		t.Fatal("string AsInt must be 0")
	}
	if Bytes_([]byte("hi")).AsString() != "hi" {
		t.Fatal("bytes AsString broken")
	}
	if Int(123).Size() != 8 || Str("abc").Size() != 3 || Nil.Size() != 0 {
		t.Fatal("Size broken")
	}
}

func TestJSONExportDoesNotError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleLog()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"scenario": "sample"`)) {
		t.Fatal("JSON export missing scenario")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"a.load"`)) {
		t.Fatal("JSON export missing resolved site name")
	}
}

func TestSiteTable(t *testing.T) {
	tab := NewSiteTable()
	a := tab.Register("x")
	b := tab.Register("y")
	if a == b || a == NoSite || b == NoSite {
		t.Fatal("IDs must be distinct and nonzero")
	}
	if again := tab.Register("x"); again != a {
		t.Fatal("re-registration must be idempotent")
	}
	if id, ok := tab.Lookup("y"); !ok || id != b {
		t.Fatal("Lookup broken")
	}
	if _, ok := tab.Lookup("zzz"); ok {
		t.Fatal("Lookup found unregistered site")
	}
	c := tab.Clone()
	c.Register("z")
	if _, ok := tab.Lookup("z"); ok {
		t.Fatal("Clone is not independent")
	}
}

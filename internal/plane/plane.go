// Package plane classifies instrumentation sites into control-plane and
// data-plane code, implementing the code-based selection heuristic of
// §3.1.1 and the approach of the HotDep'10 study the paper cites as [3]:
// control-plane code executes at substantially lower data rates than
// data-plane code, so low-rate sites are deemed control plane. The
// classifier combines two signals obtained from a profiling run:
//
//   - data rate: payload bytes observed per site, normalized by execution
//     length, and
//   - taint: the provenance of the values flowing through the site, as
//     propagated by the VM (bulk-input-derived values mark data-plane
//     flow).
//
// RCSE's code-based selector then records control-plane sites at full
// fidelity while relaxing data-plane sites (§3.1.1), which is what lets it
// escape the overhead/fidelity trade-off on control-plane bugs like the
// Hypertable data-loss race.
package plane

import (
	"fmt"
	"sort"

	"debugdet/internal/trace"
)

// Plane is a site classification.
type Plane uint8

// Plane values.
const (
	Unknown Plane = iota
	Control
	Data
)

// String returns the lower-case plane name.
func (p Plane) String() string {
	switch p {
	case Control:
		return "control"
	case Data:
		return "data"
	}
	return "unknown"
}

// SiteProfile aggregates the observable behaviour of one site over a
// profiling run.
type SiteProfile struct {
	Site        trace.SiteID
	Name        string
	Events      uint64  // events observed at the site
	PayloadByte uint64  // total payload bytes through the site
	DataTainted uint64  // events whose value carried data taint
	CtrlTainted uint64  // events whose value carried control taint
	Rate        float64 // payload bytes per kilocycle of execution
}

// String renders the profile compactly.
func (p SiteProfile) String() string {
	return fmt.Sprintf("%s: ev=%d bytes=%d rate=%.3f dataTaint=%d ctrlTaint=%d",
		p.Name, p.Events, p.PayloadByte, p.Rate, p.DataTainted, p.CtrlTainted)
}

// Options configures classification.
type Options struct {
	// RateFraction: a site whose byte rate exceeds this fraction of the
	// maximum observed site rate is data-plane by the rate signal.
	// Defaults to 0.05.
	RateFraction float64
	// TaintMajority: a site where more than this fraction of events carry
	// data taint is data-plane by the taint signal. Defaults to 0.5.
	TaintMajority float64
	// MinEvents: sites with fewer events than this are classified by
	// taint only (their rate estimate is too noisy). Defaults to 3.
	MinEvents uint64
}

func (o Options) withDefaults() Options {
	if o.RateFraction == 0 {
		o.RateFraction = 0.05
	}
	if o.TaintMajority == 0 {
		o.TaintMajority = 0.5
	}
	if o.MinEvents == 0 {
		o.MinEvents = 3
	}
	return o
}

// Classification is the result of classifying a profiling run.
type Classification struct {
	Planes   map[trace.SiteID]Plane
	Profiles []SiteProfile
	MaxRate  float64
}

// IsControl reports whether the site was classified control-plane.
// Unprofiled sites default to control: unknown code is recorded at high
// fidelity rather than silently relaxed, matching the paper's bias toward
// debugging utility.
func (c *Classification) IsControl(site trace.SiteID) bool {
	p, ok := c.Planes[site]
	if !ok {
		return true
	}
	return p == Control
}

// Profile aggregates per-site statistics from a trace. Only events that
// move payloads (stores, sends, recvs, inputs, outputs, observes) are
// profiled; pure synchronization sites still appear with zero bytes.
func Profile(l *trace.Log) []SiteProfile {
	agg := make(map[trace.SiteID]*SiteProfile)
	for _, e := range l.Events {
		if e.Site == trace.NoSite {
			continue
		}
		p := agg[e.Site]
		if p == nil {
			p = &SiteProfile{Site: e.Site, Name: l.SiteName(e.Site)}
			agg[e.Site] = p
		}
		p.Events++
		//lint:exhaustive-default only payload-bearing kinds contribute bytes to the site profile
		switch e.Kind {
		case trace.EvStore, trace.EvSend, trace.EvRecv, trace.EvInput, trace.EvOutput, trace.EvLoad, trace.EvObserve,
			trace.EvDiskWrite, trace.EvDiskRead:
			p.PayloadByte += uint64(e.Val.Size())
		}
		if e.Taint&trace.TaintData != 0 {
			p.DataTainted++
		}
		if e.Taint&trace.TaintControl != 0 {
			p.CtrlTainted++
		}
	}
	dur := l.Duration()
	if dur == 0 {
		dur = 1
	}
	out := make([]SiteProfile, 0, len(agg))
	for _, p := range agg {
		p.Rate = float64(p.PayloadByte) / float64(dur) * 1000
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Classify applies the rate and taint heuristics to site profiles.
func Classify(profiles []SiteProfile, opts Options) *Classification {
	opts = opts.withDefaults()
	c := &Classification{Planes: make(map[trace.SiteID]Plane), Profiles: profiles}
	for _, p := range profiles {
		if p.Rate > c.MaxRate {
			c.MaxRate = p.Rate
		}
	}
	for _, p := range profiles {
		c.Planes[p.Site] = classifyOne(p, c.MaxRate, opts)
	}
	return c
}

func classifyOne(p SiteProfile, maxRate float64, opts Options) Plane {
	var dataFrac, ctrlFrac float64
	if p.Events > 0 {
		dataFrac = float64(p.DataTainted) / float64(p.Events)
		ctrlFrac = float64(p.CtrlTainted) / float64(p.Events)
	}
	// Purely control-tainted traffic stays control plane even when bursty
	// (bulk metadata transfer during migrations). Sites that also move
	// data-tainted values fall through to the rate signal: a commit path
	// mixes routing metadata with payloads, and its byte rate is what
	// makes it data plane.
	if ctrlFrac > opts.TaintMajority && dataFrac <= opts.TaintMajority {
		return Control
	}
	if dataFrac > opts.TaintMajority && ctrlFrac <= opts.TaintMajority {
		return Data
	}
	if p.Events >= opts.MinEvents && maxRate > 0 &&
		p.Rate >= opts.RateFraction*maxRate {
		return Data
	}
	return Control
}

// ClassifyTrace is the convenience composition Profile + Classify.
func ClassifyTrace(l *trace.Log, opts Options) *Classification {
	return Classify(Profile(l), opts)
}

// Accuracy compares a classification against ground truth (site name →
// plane) and returns the fraction of ground-truth sites classified
// correctly, along with the per-site verdicts for reporting. Sites absent
// from the classification count as control (the default).
func Accuracy(c *Classification, sites *trace.SiteTable, truth map[string]Plane) (float64, []string) {
	if len(truth) == 0 {
		return 1, nil
	}
	names := make([]string, 0, len(truth))
	for name := range truth {
		names = append(names, name)
	}
	sort.Strings(names)
	correct := 0
	var verdicts []string
	for _, name := range names {
		want := truth[name]
		got := Control
		if id, ok := sites.Lookup(name); ok {
			if p, ok := c.Planes[id]; ok {
				got = p
			}
		}
		mark := "WRONG"
		if got == want {
			correct++
			mark = "ok"
		}
		verdicts = append(verdicts, fmt.Sprintf("%-32s want=%-7s got=%-7s %s", name, want, got, mark))
	}
	return float64(correct) / float64(len(truth)), verdicts
}

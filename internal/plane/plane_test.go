package plane

import (
	"testing"

	"debugdet/internal/trace"
	"debugdet/internal/vm"
)

// buildMixedWorkload runs a program with a chatty data path (large tainted
// payloads through one site) and a quiet control path (small metadata
// through another).
func buildMixedWorkload(t *testing.T) (*vm.Result, *vm.Machine) {
	t.Helper()
	m := vm.New(vm.Config{Seed: 11, CollectTrace: true})
	dataIn := m.DeclareStream("payload", trace.TaintData)
	ctrlIn := m.DeclareStream("config", trace.TaintControl)
	dataCh := m.NewChan("datach", 8)
	ctrlCh := m.NewChan("ctrlch", 8)
	sink := m.NewCell("sink", trace.Nil)
	meta := m.NewCell("meta", trace.Nil)

	sDataIn := m.Site("reader.data_in")
	sDataSend := m.Site("reader.data_send")
	sDataRecv := m.Site("worker.data_recv")
	sDataStore := m.Site("worker.data_store")
	sCtrlIn := m.Site("admin.ctrl_in")
	sCtrlSend := m.Site("admin.ctrl_send")
	sCtrlRecv := m.Site("mgr.ctrl_recv")
	sCtrlStore := m.Site("mgr.ctrl_store")
	sp := m.Site("main.spawn")

	res := m.Run(func(t *vm.Thread) {
		t.Spawn(sp, "reader", func(t *vm.Thread) {
			for i := 0; i < 200; i++ {
				t.ClearTaint()
				t.Input(sDataIn, dataIn)
				t.Send(sDataSend, dataCh, trace.Bytes_(make([]byte, 256)))
			}
			t.Send(sDataSend, dataCh, trace.Str("eof"))
		})
		t.Spawn(sp, "worker", func(t *vm.Thread) {
			for {
				t.ClearTaint()
				v := t.Recv(sDataRecv, dataCh)
				if v.Kind == trace.VString && v.AsString() == "eof" {
					return
				}
				t.Store(sDataStore, sink, v)
			}
		})
		t.Spawn(sp, "admin", func(t *vm.Thread) {
			for i := 0; i < 3; i++ {
				t.ClearTaint()
				t.Input(sCtrlIn, ctrlIn)
				t.Send(sCtrlSend, ctrlCh, trace.Str("rebalance"))
			}
			t.Send(sCtrlSend, ctrlCh, trace.Str("eof"))
		})
		t.Spawn(sp, "mgr", func(t *vm.Thread) {
			for {
				t.ClearTaint()
				v := t.Recv(sCtrlRecv, ctrlCh)
				if v.AsString() == "eof" {
					return
				}
				t.Store(sCtrlStore, meta, v)
			}
		})
	})
	if res.Outcome != vm.OutcomeOK {
		t.Fatalf("workload outcome = %v (%v)", res.Outcome, res.Terminal)
	}
	return res, m
}

func TestClassifierSeparatesPlanes(t *testing.T) {
	res, m := buildMixedWorkload(t)
	c := ClassifyTrace(res.Trace, Options{})

	truth := map[string]Plane{
		"reader.data_send":  Data,
		"worker.data_recv":  Data,
		"worker.data_store": Data,
		"admin.ctrl_send":   Control,
		"mgr.ctrl_recv":     Control,
		"mgr.ctrl_store":    Control,
	}
	acc, verdicts := Accuracy(c, m.Sites(), truth)
	if acc < 1.0 {
		for _, v := range verdicts {
			t.Log(v)
		}
		for _, p := range c.Profiles {
			t.Logf("profile: %s", p)
		}
		t.Fatalf("classification accuracy = %.2f, want 1.0", acc)
	}
}

func TestUnprofiledSiteDefaultsToControl(t *testing.T) {
	c := &Classification{Planes: map[trace.SiteID]Plane{}}
	if !c.IsControl(trace.SiteID(99)) {
		t.Fatal("unprofiled site must default to control plane")
	}
}

func TestProfileRatesAndTaint(t *testing.T) {
	res, _ := buildMixedWorkload(t)
	profiles := Profile(res.Trace)
	byName := make(map[string]SiteProfile)
	for _, p := range profiles {
		byName[p.Name] = p
	}
	d, ok := byName["reader.data_send"]
	if !ok {
		t.Fatal("data site not profiled")
	}
	cp, ok := byName["admin.ctrl_send"]
	if !ok {
		t.Fatal("control site not profiled")
	}
	if d.Rate <= cp.Rate {
		t.Fatalf("data rate (%.3f) not above control rate (%.3f)", d.Rate, cp.Rate)
	}
	if d.DataTainted == 0 {
		t.Fatal("data site shows no data taint")
	}
	if cp.CtrlTainted == 0 {
		t.Fatal("control site shows no control taint")
	}
}

func TestTaintOverridesBurstyControlTraffic(t *testing.T) {
	// A site with high rate but overwhelmingly control-tainted values must
	// remain control plane (e.g. bulk metadata transfer during migration).
	p := SiteProfile{Site: 5, Name: "migrate.bulk", Events: 100,
		PayloadByte: 100000, DataTainted: 2, CtrlTainted: 95, Rate: 50}
	c := Classify([]SiteProfile{p}, Options{})
	if c.Planes[5] != Control {
		t.Fatalf("bursty control-tainted site classified %v, want control", c.Planes[5])
	}
}

func TestLowEventSitesClassifiedByTaintOnly(t *testing.T) {
	pd := SiteProfile{Site: 1, Name: "rare.data", Events: 2,
		PayloadByte: 10000, DataTainted: 2, Rate: 1000}
	c := Classify([]SiteProfile{pd}, Options{})
	// Rate signal suppressed below MinEvents, but taint majority applies.
	if c.Planes[1] != Data {
		t.Fatalf("rare data-tainted site classified %v, want data", c.Planes[1])
	}
}

func TestAccuracyEmptyTruth(t *testing.T) {
	acc, verdicts := Accuracy(&Classification{Planes: map[trace.SiteID]Plane{}}, trace.NewSiteTable(), nil)
	if acc != 1 || verdicts != nil {
		t.Fatal("empty truth must be vacuously accurate")
	}
}

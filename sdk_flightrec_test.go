package debugdet_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"debugdet"
)

// TestPublicFlightRecorder drives the always-on recording surface end to
// end through the SDK only: stream a run into a spill directory, reopen
// it with OpenSegmentStore, then seek, validate and debug against the
// store — the workflow the README quick-start documents.
func TestPublicFlightRecorder(t *testing.T) {
	eng := debugdet.New()
	s, err := eng.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "spill")
	res, err := eng.RecordStreaming(context.Background(), s, debugdet.Options{
		FlightRecorder: &debugdet.FlightRecorderOptions{
			Interval:     64,
			RingSegments: 2,
			SpillDir:     dir,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || res.Segments < 2 || res.Spilled == 0 {
		t.Fatalf("streaming recording did not rotate: %d events, %d segments, %d spilled",
			res.Events, res.Segments, res.Spilled)
	}

	st, err := debugdet.OpenSegmentStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finalized() || st.Meta().Scenario != "bank" || st.Meta().EventCount != res.Events {
		t.Fatalf("reopened store identity: finalized=%v scenario=%q events=%d",
			st.Finalized(), st.Meta().Scenario, st.Meta().EventCount)
	}

	target := res.Events / 2
	sess, err := eng.SeekStore(context.Background(), s, st, target, debugdet.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Pos() != target || !sess.FromCheckpoint {
		t.Fatalf("store seek: pos=%d (want %d) fromCkpt=%v", sess.Pos(), target, sess.FromCheckpoint)
	}
	if _, ok := sess.RunToEnd(); !ok {
		t.Fatal("store seek replay did not reproduce the run")
	}

	sres, err := eng.ReplaySegmentedStore(context.Background(), s, st, debugdet.ReplayOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Ok {
		t.Fatalf("segmented store replay diverged at %d", sres.Mismatch)
	}

	d, err := eng.DebugStore(context.Background(), s, st, debugdet.DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.SeekTo(target); err != nil {
		t.Fatal(err)
	}
	if err := d.Back(3); err != nil {
		t.Fatal(err)
	}
	if d.Pos() != target-3 {
		t.Fatalf("debug cursor at %d, want %d", d.Pos(), target-3)
	}
}

// TestPublicOptionValidation pins the Options contract: negative
// CheckpointInterval, RingSegments and Retention are rejected with a
// clear error everywhere options flow, and streaming recording requires
// a spill directory.
func TestPublicOptionValidation(t *testing.T) {
	eng := debugdet.New()
	s, err := eng.ByName("bank")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.Record(context.Background(), s, debugdet.Perfect, debugdet.Options{CheckpointInterval: -1})
	if err == nil || !strings.Contains(err.Error(), "CheckpointInterval") {
		t.Fatalf("negative interval on Record: err = %v", err)
	}
	_, err = eng.RecordStreaming(context.Background(), s, debugdet.Options{
		CheckpointInterval: -1,
		FlightRecorder:     &debugdet.FlightRecorderOptions{SpillDir: t.TempDir()},
	})
	if err == nil || !strings.Contains(err.Error(), "CheckpointInterval") {
		t.Fatalf("negative interval on RecordStreaming: err = %v", err)
	}
	_, err = eng.RecordStreaming(context.Background(), s, debugdet.Options{})
	if err == nil || !strings.Contains(err.Error(), "SpillDir") {
		t.Fatalf("missing spill dir: err = %v", err)
	}
	// Negative flight-recorder knobs are rejected before any file is
	// created, both through the engine and at the recorder layer: a
	// negative ring would never seal a segment, a negative retention would
	// evict everything.
	for _, tc := range []struct {
		name string
		fo   debugdet.FlightRecorderOptions
	}{
		{"RingSegments", debugdet.FlightRecorderOptions{SpillDir: t.TempDir(), RingSegments: -1}},
		{"Retention", debugdet.FlightRecorderOptions{SpillDir: t.TempDir(), Retention: -2}},
	} {
		fo := tc.fo
		_, err = eng.RecordStreaming(context.Background(), s, debugdet.Options{FlightRecorder: &fo})
		if err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("negative %s on RecordStreaming: err = %v", tc.name, err)
		}
		if entries, dirErr := os.ReadDir(fo.SpillDir); dirErr != nil || len(entries) != 0 {
			t.Fatalf("rejected options still touched spill dir %s: %v %v", fo.SpillDir, entries, dirErr)
		}
		// Record ignores FlightRecorder but still validates it, so a bad
		// value surfaces even on the non-streaming path.
		_, _, err = eng.Record(context.Background(), s, debugdet.Perfect, debugdet.Options{FlightRecorder: &fo})
		if err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("negative %s on Record: err = %v", tc.name, err)
		}
	}
}

package debugdet

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"debugdet/internal/core"
	"debugdet/internal/eval"
	"debugdet/internal/flightrec"
	"debugdet/internal/infer"
	"debugdet/internal/race"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/trace"
	"debugdet/internal/vm"
	"debugdet/internal/workload"
)

// The benchmarks below regenerate the paper's evaluation artifacts (one
// bench per figure/table; see the experiment index in DESIGN.md §3) and
// measure the framework's own building blocks. Run with:
//
//	go test -bench=. -benchmem
//
// The figure/table benches report the wall-clock cost of regenerating each
// artifact end to end; cmd/figures prints the artifacts themselves.

// benchOpts keeps figure benches affordable while preserving every
// qualitative outcome (verified by the eval tests).
var benchOpts = eval.Options{ReplayBudget: 120}

// BenchmarkFig1 regenerates Figure 1: every determinism model over the
// whole scenario corpus, with DF/DE/DU aggregation.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("fig1 rows = %d", len(rows))
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: the Hypertable data-loss case study
// under value, failure, RCSE (plus reference models).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.Fig2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 5 {
			b.Fatalf("fig2 cells = %d", len(cells))
		}
	}
}

// BenchmarkTableDF regenerates the §4 fidelity table (T-DF); it shares
// Fig. 2's cells, so this measures the three paper models only.
func BenchmarkTableDF(b *testing.B) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, m := range []record.Model{record.Value, record.Failure, record.DebugRCSE} {
			if _, err := core.Evaluate(s, m, core.Options{ReplayBudget: benchOpts.ReplayBudget}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTableOverhead regenerates the §4 recording-overhead comparison
// (T-OVH): recording cost only, no replay.
func BenchmarkTableOverhead(b *testing.B) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, m := range []record.Model{record.Value, record.Failure} {
			if _, _, err := record.Record(s, m, s.DefaultSeed, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTablePlane regenerates the classification-accuracy table
// (T-PLANE).
func BenchmarkTablePlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TablePlane(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no plane rows")
		}
	}
}

// BenchmarkTableDU regenerates the DU table's shrink row (T-DU):
// ESD-style execution synthesis with reduced parameters.
func BenchmarkTableDU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.ShrinkCell(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableTriggers regenerates the §3.1 selector ablation (T-TRIG).
func BenchmarkTableTriggers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.TableTriggers(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no trigger rows")
		}
	}
}

// --- component micro-benchmarks ---

// BenchmarkVMThroughput measures raw VM event throughput (two threads
// hammering a shared counter, no recording, no trace collection).
func BenchmarkVMThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := vm.New(vm.Config{Seed: int64(i), CollectTrace: false})
		c := m.NewCell("c", trace.Int(0))
		s := m.Site("s")
		sp := m.Site("spawn")
		w := func(t *vm.Thread) {
			for j := 0; j < 500; j++ {
				v := t.Load(s, c)
				t.Store(s, c, trace.Int(v.AsInt()+1))
			}
		}
		res := m.Run(func(t *vm.Thread) {
			t.Spawn(sp, "a", w)
			t.Spawn(sp, "b", w)
		})
		if res.Outcome != vm.OutcomeOK {
			b.Fatalf("outcome %v", res.Outcome)
		}
	}
}

// BenchmarkVMStepThroughput measures the VM scheduling hot path itself:
// one long-running thread stepping through loads and stores while a second
// thread sits blocked on an empty channel. The scheduler re-picks the same
// thread at every decision, so this is the pure per-step cost — baton
// handoff, scheduling, event emission — with no recording attached.
func BenchmarkVMStepThroughput(b *testing.B) {
	b.ReportAllocs()
	const stepsPerRun = 2000
	for i := 0; i < b.N; i++ {
		m := vm.New(vm.Config{Seed: int64(i), CollectTrace: false})
		c := m.NewCell("c", trace.Int(0))
		ch := m.NewChan("ch", 1)
		s := m.Site("s")
		sp := m.Site("spawn")
		res := m.Run(func(t *vm.Thread) {
			t.Spawn(sp, "blocked", func(t *vm.Thread) {
				t.Recv(s, ch) // parked until the main thread finishes
			})
			for j := 0; j < stepsPerRun; j++ {
				v := t.Load(s, c)
				t.Store(s, c, trace.Int(v.AsInt()+1))
			}
			t.Send(s, ch, trace.Int(0))
		})
		if res.Outcome != vm.OutcomeOK {
			b.Fatalf("outcome %v", res.Outcome)
		}
	}
}

// BenchmarkRecorderPerEvent measures the recorder fast path for each
// stock policy over a synthetic event stream.
func BenchmarkRecorderPerEvent(b *testing.B) {
	models := []record.Model{record.Perfect, record.Value, record.Output, record.Failure}
	for _, model := range models {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			b.ReportAllocs()
			m := vm.New(vm.Config{})
			rec := record.NewRecorder(m, record.PolicyFor(model))
			e := trace.Event{Kind: trace.EvStore, TID: 1, Site: 2, Obj: 3, Val: trace.Int(42)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Seq = uint64(i)
				rec.OnEvent(&e)
			}
		})
	}
}

// BenchmarkRaceDetector measures happens-before analysis over a recorded
// racy trace.
func BenchmarkRaceDetector(b *testing.B) {
	s, err := workload.ByName("bank")
	if err != nil {
		b.Fatal(err)
	}
	v := s.Exec(scenario.ExecOptions{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		race.Analyze(v.Trace)
	}
}

// BenchmarkCodecEncode measures trace-log serialization throughput.
func BenchmarkCodecEncode(b *testing.B) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		b.Fatal(err)
	}
	v := s.Exec(scenario.ExecOptions{Seed: 19})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Encode(io.Discard, v.Trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHyperKVRun measures one full cluster execution (the Fig. 2
// workload) without any recording attached.
func BenchmarkHyperKVRun(b *testing.B) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := s.Exec(scenario.ExecOptions{Seed: 19})
		if v.Result.Steps == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkDynoKVRun measures one full replicated-KV cluster execution
// (the T-DYNO workload's stale-read cell) without any recording attached.
func BenchmarkDynoKVRun(b *testing.B) {
	s, err := workload.ByName("dynokv-staleread")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
		if v.Result.Steps == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkTableDynoKV regenerates the replication-family table (T-DYNO):
// every determinism model over the dynokv scenarios.
func BenchmarkTableDynoKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.TableDynoKV(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != len(eval.DynoKVScenarios)*len(record.AllModels()) {
			b.Fatalf("dynokv cells = %d", len(cells))
		}
	}
}

// BenchmarkTableFuzz regenerates the generated-family table (T-FUZZ):
// every determinism model over the four fuzz scenarios at their pinned
// defaults.
func BenchmarkTableFuzz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.TableFuzz(benchOpts, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != len(eval.FuzzScenarios)*len(record.AllModels()) {
			b.Fatalf("fuzz cells = %d", len(cells))
		}
	}
}

// BenchmarkProgen measures generation and one execution of each fuzz
// template over a fixed set of generator seeds — the fuzzer's inner
// loop. The gen set is pinned so every iteration does identical work
// and ns/op is comparable across runs.
func BenchmarkProgen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range eval.FuzzScenarios {
			s, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for gen := int64(0); gen < 8; gen++ {
				v := s.Exec(scenario.ExecOptions{
					Seed:   s.DefaultSeed,
					Params: scenario.Params{"gen": gen},
				})
				if v.Result.Steps == 0 {
					b.Fatal("empty run")
				}
			}
		}
	}
}

// BenchmarkPerfectReplay measures deterministic replay of a perfect
// recording of the case-study workload.
func BenchmarkPerfectReplay(b *testing.B) {
	s, err := workload.ByName("hyperkv-dataloss")
	if err != nil {
		b.Fatal(err)
	}
	rec, _, err := Record(s, Perfect, s.DefaultSeed, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Replay(s, rec, ReplayOptions{})
		if !res.Ok {
			b.Fatalf("replay failed: %s", res.Note)
		}
	}
}

// benchLongRecording records a long-trace production run (a scaled-up
// bank) under the perfect model, checkpointed every interval events
// (0 = no checkpoints).
func benchLongRecording(b *testing.B, interval int64) (*Scenario, *Recording) {
	b.Helper()
	s, err := workload.ByName("bank")
	if err != nil {
		b.Fatal(err)
	}
	rec, _, _, err := core.RecordOnly(s, record.Perfect, core.Options{
		Params:             scenario.Params{"transfers": 400},
		CheckpointInterval: interval,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s, rec
}

// BenchmarkCheckpointSeek measures time-travel latency: positioning a
// replay at 90% of a long trace, with checkpoints (restore + short
// scheduled suffix) against without (scheduled replay of the whole
// prefix). The T-CKPT table records the deterministic event counts behind
// these timings.
func BenchmarkCheckpointSeek(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		interval int64
	}{{"checkpointed", 1024}, {"from-start", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			s, rec := benchLongRecording(b, cfg.interval)
			target := rec.EventCount * 9 / 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := replay.Seek(s, rec, target, replay.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if sess.Pos() != target {
					b.Fatalf("seek landed at %d, want %d", sess.Pos(), target)
				}
				sess.Close()
			}
		})
	}
}

// BenchmarkFlightRecorder measures the streaming recorder end to end: the
// same scaled-up bank run as benchLongRecording, recorded through segment
// rotation and spill into a temp directory instead of a monolithic
// in-memory Recording. The delta against a checkpointed RecordOnly of the
// same configuration is the flight recorder's pipeline overhead (segment
// codec, feed log, manifest rewrites).
func BenchmarkFlightRecorder(b *testing.B) {
	s, err := workload.ByName("bank")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := flightrec.Record(s, s.DefaultSeed, scenario.Params{"transfers": 400}, flightrec.Options{
			RingSegments: 2,
			SpillDir:     b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 || res.Spilled == 0 {
			b.Fatalf("flight recording did not spill: %d events, %d spilled", res.Events, res.Spilled)
		}
	}
}

// BenchmarkSegmentedReplay measures validated replay of a long perfect
// recording: plain sequential replay against segmented replay at several
// worker counts. Segment count tracks the worker budget (a restore costs
// one feed replay of its prefix, so over-segmenting turns wall-clock
// wins into restore work); the speedup at workers>1 on a multi-core host
// is the tentpole claim of the checkpoint subsystem, and EXPERIMENTS.md
// records the measured numbers together with the deterministic
// critical-path accounting from T-CKPT.
func BenchmarkSegmentedReplay(b *testing.B) {
	// First find the trace length, then checkpoint at quarters so the
	// segments match a small worker pool.
	_, plain := benchLongRecording(b, 0)
	s, rec := benchLongRecording(b, int64(plain.EventCount/4))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := replay.Replay(s, rec, replay.Options{})
			if !res.Ok {
				b.Fatalf("sequential replay failed: %s", res.Note)
			}
		}
	})
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := replay.Segmented(s, rec, replay.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Ok {
					b.Fatalf("segmented replay diverged at %d", res.Mismatch)
				}
			}
		})
	}
}

// BenchmarkForkedSearch measures checkpoint-forked candidate execution
// (infer.Forker) on the T-FORK sensitivity sweep: the recorded schedule
// and control-plane inputs forced, the budget spent re-executing across
// data seeds. On a control-only scenario every candidate is equivalent to
// the trunk, so the forked mode executes one run and prunes the rest —
// the scratch/forked ratio is the wall-clock win T-FORK reports in
// worksteps. The forked result is bit-identical to the scratch one
// (pinned by the eval and infer tests).
func BenchmarkForkedSearch(b *testing.B) {
	s := workload.Bank()
	v := s.Exec(scenario.ExecOptions{Seed: s.DefaultSeed})
	forced := map[string][]trace.Value{"xfer.pick": v.Result.InputsUsed["xfer.pick"]}
	reject := func(*scenario.RunView) bool { return false }
	opts := infer.Options{
		Budget:       40,
		BaseSeed:     7,
		Workers:      1,
		Schedule:     v.Trace.Schedule(),
		ForcedInputs: forced,
	}
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := infer.Search(s, reject, opts)
			if out.Err != nil || out.Attempts != opts.Budget {
				b.Fatalf("scratch sweep: err=%v attempts=%d", out.Err, out.Attempts)
			}
		}
	})
	b.Run("forked", func(b *testing.B) {
		fo := opts
		fo.Fork = true
		for i := 0; i < b.N; i++ {
			out := infer.Search(s, reject, fo)
			if out.Err != nil || out.Attempts != opts.Budget {
				b.Fatalf("forked sweep: err=%v attempts=%d", out.Err, out.Attempts)
			}
		}
	})
}

package debugdet_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"debugdet"
)

// TestEvaluateBatchEarlyBreakNoLeak pins EvaluateBatch's termination
// contract: consuming only the first cell of the iter.Seq2 and breaking
// out of the range loop must wind down the whole worker pool — no
// goroutine may outlive the iterator. Checked goleak-style via the
// runtime.NumGoroutine delta, polled because canceled workers finish
// their in-flight cell before exiting.
func TestEvaluateBatchEarlyBreakNoLeak(t *testing.T) {
	eng := debugdet.New(debugdet.WithWorkers(4), debugdet.WithReplayBudget(60))
	// Enough jobs that workers are still mid-grid when the consumer
	// leaves; search-heavy failure cells keep them busy.
	jobs := debugdet.GridJobs(
		[]string{"sum", "overflow", "bank", "msgdrop", "fuzz-atomicity", "fuzz-oversell"},
		debugdet.Models())

	before := runtime.NumGoroutine()
	for range 3 {
		n := 0
		for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
			if err != nil {
				t.Fatalf("%s/%s: %v", res.Job.Scenario, res.Job.Model, err)
			}
			if res.Evaluation == nil {
				t.Fatal("first cell has no evaluation")
			}
			n++
			break // consume one cell only; the rest of the grid is abandoned
		}
		if n != 1 {
			t.Fatalf("consumed %d cells, want 1", n)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		now := runtime.NumGoroutine()
		// Allow a little slack for runtime bookkeeping goroutines; a
		// leaked pool would hold 4 workers + feeder per iteration.
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after early break\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Package scen is the public workload contract of the debugdet SDK: how a
// buggy program, its environment, its failure specification and its
// possible root causes are described to the record/replay machinery.
//
// The definitions follow §3 of the paper. A failure is a violation of the
// program's I/O specification, expressed as a predicate over a finished
// run that also yields a failure signature; a root cause is the negation
// of the predicate a fix would enforce. A user-authored Scenario is built
// against the debugdet/sim machine API, registered on an engine's
// Registry, and from then on is indistinguishable from the built-in
// corpus: every determinism model can record, replay and evaluate it.
//
// The contract types are aliases for the engine-internal definitions, so
// promoting a scenario from an application repo into this corpus (or vice
// versa) is a re-import, not a rewrite.
//
// Architecture: DESIGN.md §0 (SDK layering) places this contract in the
// stack; DESIGN.md §4 (the scenario corpus) describes the built-in
// scenarios written against it.
package scen

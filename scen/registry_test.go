package scen_test

import (
	"strings"
	"sync"
	"testing"

	"debugdet/scen"
	"debugdet/sim"
	"debugdet/trace"
)

func stub(name string) *scen.Scenario {
	return &scen.Scenario{
		Name: name,
		Build: func(m *sim.Machine, p scen.Params) func(*sim.Thread) {
			cell := m.NewCell("x", trace.Int(0))
			site := m.Site("stub")
			return func(t *sim.Thread) { t.Store(site, cell, trace.Int(1)) }
		},
		Inputs: func(seed int64, p scen.Params) sim.InputSource {
			return sim.ZeroInputs
		},
		Failure: scen.FailureSpec{
			Name:  "never",
			Check: func(v *scen.RunView) (bool, string) { return false, "" },
		},
	}
}

func TestRegistryContract(t *testing.T) {
	r := scen.NewRegistry()
	if err := r.Register(stub("a"), stub("a-fixed")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(stub("b")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterVariants(stub("b-fixed")); err != nil {
		t.Fatal(err)
	}

	// Duplicates rejected, wherever the name lives.
	for _, dup := range []string{"a", "a-fixed", "b-fixed"} {
		if err := r.Register(stub(dup)); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("duplicate %q: err = %v", dup, err)
		}
	}
	// Invalid registrations rejected.
	if err := r.Register(nil); err == nil {
		t.Error("nil scenario accepted")
	}
	if err := r.Register(&scen.Scenario{Name: "nobuild"}); err == nil {
		t.Error("scenario without Build accepted")
	}
	if err := r.Register(&scen.Scenario{Build: stub("x").Build}); err == nil {
		t.Error("scenario without name accepted")
	}

	// Corpus excludes variants; Names includes everything, sorted.
	var corpus []string
	for _, s := range r.Scenarios() {
		corpus = append(corpus, s.Name)
	}
	if strings.Join(corpus, ",") != "a,b" {
		t.Errorf("corpus = %v, want [a b]", corpus)
	}
	if got := strings.Join(r.Names(), ","); got != "a,a-fixed,b,b-fixed" {
		t.Errorf("names = %v", got)
	}
	var variants []string
	for _, s := range r.Variants() {
		variants = append(variants, s.Name)
	}
	if strings.Join(variants, ",") != "a-fixed,b-fixed" {
		t.Errorf("variants = %v", variants)
	}

	// Everything resolves; unknown names get a suggestion.
	for _, n := range r.Names() {
		if _, err := r.ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := r.ByName("a-fixd"); err == nil || !strings.Contains(err.Error(), `did you mean "a-fixed"?`) {
		t.Errorf("suggestion missing: %v", err)
	}
}

// TestRegistryRegisterAtomic pins atomicity: a call rejected because of
// one bad entry registers nothing, so it can be corrected and retried.
func TestRegistryAtomic(t *testing.T) {
	r := scen.NewRegistry()
	if err := r.Register(stub("a"), &scen.Scenario{Name: ""}); err == nil {
		t.Fatal("bad variant accepted")
	}
	if _, err := r.ByName("a"); err == nil {
		t.Fatal("failed Register left the primary scenario registered")
	}
	// Duplicates within one batch are also rejected wholesale.
	if err := r.Register(stub("b"), stub("b")); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("in-batch duplicate: err = %v", err)
	}
	if len(r.Names()) != 0 {
		t.Fatalf("registry not empty after failed registrations: %v", r.Names())
	}
	// The corrected retry succeeds.
	if err := r.Register(stub("a"), stub("a-fixed")); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := scen.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			if err := r.Register(stub(name)); err != nil {
				t.Errorf("register %s: %v", name, err)
			}
			r.Names()
			if _, err := r.ByName(name); err != nil {
				t.Errorf("resolve %s: %v", name, err)
			}
		}(i)
	}
	wg.Wait()
	if len(r.Scenarios()) != 8 {
		t.Fatalf("got %d scenarios", len(r.Scenarios()))
	}
}

package scen

import (
	"fmt"
	"sort"
	"sync"

	"debugdet/internal/scenario"
)

// Registry is a named scenario catalog: the corpus an engine evaluates
// plus the healthy variants of its fixable scenarios. The engine's
// registry comes pre-loaded with the built-in corpus; user scenarios are
// added with Register and from then on resolve, record, replay and
// evaluate exactly like built-ins.
//
// Resolution rules: every name — corpus or variant — is unique across the
// registry and resolvable by ByName; variants (for example
// "hyperkv-fixed", the build after the fix) are excluded from Scenarios,
// so corpus-wide experiments evaluate only failing programs while
// invariant training and A/B debugging can still reach the healthy
// builds.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu           sync.RWMutex
	corpusOrder  []string
	variantOrder []string
	byName       map[string]*Scenario
	variant      map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:  make(map[string]*Scenario),
		variant: make(map[string]bool),
	}
}

// Register adds a scenario and, optionally, its healthy variants. Every
// name must be non-empty and unused; a duplicate name — including a clash
// with a built-in — is an error, so user corpora cannot silently shadow
// existing scenarios.
// Registration is atomic: if any scenario in the call fails validation,
// nothing is registered, so a failed call can be corrected and retried.
func (r *Registry) Register(s *Scenario, variants ...*Scenario) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.validateLocked(append([]*Scenario{s}, variants...)); err != nil {
		return err
	}
	r.insertLocked(s, false)
	for _, v := range variants {
		r.insertLocked(v, true)
	}
	return nil
}

// RegisterVariants adds healthy variants that are not tied to a single
// corpus scenario registered in the same call (the built-in corpus
// registers its fixed builds this way). The same name and atomicity
// rules apply.
func (r *Registry) RegisterVariants(variants ...*Scenario) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.validateLocked(variants); err != nil {
		return err
	}
	for _, v := range variants {
		r.insertLocked(v, true)
	}
	return nil
}

// validateLocked checks a whole registration batch — against the registry
// and against itself — before anything is inserted; callers hold r.mu.
func (r *Registry) validateLocked(batch []*Scenario) error {
	inBatch := make(map[string]bool, len(batch))
	for _, sc := range batch {
		if sc == nil {
			return fmt.Errorf("scen: Register called with nil scenario")
		}
		if sc.Name == "" {
			return fmt.Errorf("scen: scenario has no name")
		}
		if sc.Build == nil {
			return fmt.Errorf("scen: scenario %q has no Build function", sc.Name)
		}
		if _, exists := r.byName[sc.Name]; exists || inBatch[sc.Name] {
			return fmt.Errorf("scen: duplicate scenario name %q", sc.Name)
		}
		inBatch[sc.Name] = true
	}
	return nil
}

// insertLocked stores one validated scenario; callers hold r.mu.
func (r *Registry) insertLocked(sc *Scenario, isVariant bool) {
	r.byName[sc.Name] = sc
	if isVariant {
		r.variant[sc.Name] = true
		r.variantOrder = append(r.variantOrder, sc.Name)
	} else {
		r.corpusOrder = append(r.corpusOrder, sc.Name)
	}
}

// MustRegister is Register, panicking on error — for package-level corpus
// construction where a duplicate name is a programming error.
func (r *Registry) MustRegister(s *Scenario, variants ...*Scenario) {
	if err := r.Register(s, variants...); err != nil {
		panic(err)
	}
}

// ByName resolves a scenario or variant. An unknown name's error lists
// the available names and suggests the nearest match.
func (r *Registry) ByName(name string) (*Scenario, error) {
	r.mu.RLock()
	s, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		return s, nil
	}
	return nil, scenario.UnknownNameError("scen", name, r.Names())
}

// Names lists every resolvable name — corpus plus variants — sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scenarios returns the corpus — every registered scenario except the
// variants — in registration order.
func (r *Registry) Scenarios() []*Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Scenario, len(r.corpusOrder))
	for i, n := range r.corpusOrder {
		out[i] = r.byName[n]
	}
	return out
}

// Variants returns the registered healthy variants in registration order.
func (r *Registry) Variants() []*Scenario {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Scenario, len(r.variantOrder))
	for i, n := range r.variantOrder {
		out[i] = r.byName[n]
	}
	return out
}

// Package scen is the public workload contract of the debugdet SDK: how a
// buggy program, its environment, its failure specification and its
// possible root causes are described to the record/replay machinery.
//
// The definitions follow §3 of the paper. A failure is a violation of the
// program's I/O specification, expressed as a predicate over a finished
// run that also yields a failure signature; a root cause is the negation
// of the predicate a fix would enforce. A user-authored Scenario is built
// against the debugdet/sim machine API, registered on an engine's
// Registry, and from then on is indistinguishable from the built-in
// corpus: every determinism model can record, replay and evaluate it.
//
// The contract types are aliases for the engine-internal definitions, so
// promoting a scenario from an application repo into this corpus (or vice
// versa) is a re-import, not a rewrite.
package scen

import (
	"debugdet/internal/scenario"
)

// Params are scenario parameters (sizes, client counts, toggles).
type Params = scenario.Params

// RunView is what predicates and analyses see of a finished execution:
// the machine (for object names and final state), the result, and the
// oracle trace.
type RunView = scenario.RunView

// FailureSpec is a scenario's failure specification: a named predicate
// over a finished run that yields the failure signature.
type FailureSpec = scenario.FailureSpec

// RootCause is one possible explanation for the scenario's failure.
type RootCause = scenario.RootCause

// InputDomain declares the value space of one environment stream, for the
// inference engine to search over when values were not recorded.
type InputDomain = scenario.InputDomain

// Scenario is one reproducible buggy program.
type Scenario = scenario.Scenario

// ExecOptions parameterizes one execution of a scenario.
type ExecOptions = scenario.ExecOptions

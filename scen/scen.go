package scen

import (
	"debugdet/internal/scenario"
)

// Params are scenario parameters (sizes, client counts, toggles).
type Params = scenario.Params

// RunView is what predicates and analyses see of a finished execution:
// the machine (for object names and final state), the result, and the
// oracle trace.
type RunView = scenario.RunView

// FailureSpec is a scenario's failure specification: a named predicate
// over a finished run that yields the failure signature.
type FailureSpec = scenario.FailureSpec

// RootCause is one possible explanation for the scenario's failure.
type RootCause = scenario.RootCause

// InputDomain declares the value space of one environment stream, for the
// inference engine to search over when values were not recorded.
type InputDomain = scenario.InputDomain

// Scenario is one reproducible buggy program.
type Scenario = scenario.Scenario

// ExecOptions parameterizes one execution of a scenario.
type ExecOptions = scenario.ExecOptions

package debugdet_test

import (
	"context"
	"fmt"
	"strings"

	"debugdet"
	"debugdet/scen"
	"debugdet/sim"
	"debugdet/trace"
)

// newTicketScenario authors a workload from scratch using only the public
// SDK packages: a box office with one seat left and three clerks who each
// check availability and then sell, without holding a lock across the
// check-sell window. Two clerks can both observe the free seat and the
// house oversells — a classic TOCTOU race, declared to the framework with
// its failure specification and root cause so every determinism model can
// record, replay and evaluate it.
func newTicketScenario() *scen.Scenario {
	return &scen.Scenario{
		Name:          "ticket-oversell",
		Description:   "three clerks race an unlocked check-then-sell window over the last seat",
		DefaultParams: scen.Params{"seats": 1, "clerks": 3},
		DefaultSeed:   3, // a seed under which the race manifests (pinned by TestCustomScenarioSDK)
		Build: func(m *sim.Machine, p scen.Params) func(*sim.Thread) {
			clerks := p.Get("clerks", 3)
			seats := m.NewCell("seats", trace.Int(p.Get("seats", 1)))
			// capacity holds the immutable house size so the failure
			// predicate can compare against it after the run.
			m.NewCell("capacity", trace.Int(p.Get("seats", 1)))
			sold := m.NewCell("sold", trace.Int(0))
			done := m.NewChan("done", int(clerks))
			check := m.Site("clerk.check")
			sell := m.Site("clerk.sell")
			think := m.Site("clerk.think")
			spawn := m.Site("main.spawn")
			report := m.Site("main.report")
			return func(t *sim.Thread) {
				for i := int64(0); i < clerks; i++ {
					t.Spawn(spawn, fmt.Sprintf("clerk%d", i), func(t *sim.Thread) {
						if t.Load(check, seats).AsInt() > 0 {
							// The racy window: the clerk "thinks" for an
							// environment-supplied number of steps between
							// checking and selling.
							for n := t.Input(think, m.Stream("think")).AsInt(); n > 0; n-- {
								t.Yield(think)
							}
							t.Store(sell, seats, trace.Int(t.Load(sell, seats).AsInt()-1))
							t.Add(sell, sold, 1)
						}
						t.Send(sell, done, trace.Int(1))
					})
				}
				for i := int64(0); i < clerks; i++ {
					t.Recv(report, done)
				}
				t.Output(report, m.Stream("sales"), trace.Int(t.Load(report, sold).AsInt()))
			}
		},
		Inputs: func(seed int64, p scen.Params) sim.InputSource {
			return sim.SeededInputs(seed, 4)
		},
		InputDomains: []scen.InputDomain{{Stream: "think", Min: 0, Max: 3}},
		Failure: scen.FailureSpec{
			Name: "oversell",
			Check: func(v *scen.RunView) (bool, string) {
				if v.Machine.CellByName("sold").AsInt() > v.Machine.CellByName("capacity").AsInt() {
					return true, "ticket:oversold"
				}
				return false, ""
			},
		},
		RootCauses: []scen.RootCause{{
			ID:          "check-sell-race",
			Description: "seat check and sale are not atomic; two clerks pass the check together",
			Present: func(v *scen.RunView) bool {
				return v.Machine.CellByName("sold").AsInt() > v.Machine.CellByName("capacity").AsInt()
			},
		}},
	}
}

// Example_customScenario registers the user-authored scenario on an
// engine and evaluates it under every determinism model with the
// streaming batch API — the full record→replay→evaluate spectrum over a
// workload the framework has never seen.
func Example_customScenario() {
	eng := debugdet.New()
	if err := eng.Register(newTicketScenario()); err != nil {
		panic(err)
	}
	jobs := debugdet.GridJobs([]string{"ticket-oversell"}, debugdet.Models())
	for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
		if err != nil {
			panic(err)
		}
		ev := res.Evaluation
		fmt.Printf("%-10s DF=%.2f replay_ok=%v causes=%s\n",
			ev.Model, ev.Utility.DF, ev.Replay.Ok, joinCauses(ev.Fidelity.ReplayCauses))
	}
	// Output:
	// perfect    DF=1.00 replay_ok=true causes=check-sell-race
	// value      DF=1.00 replay_ok=true causes=check-sell-race
	// output     DF=1.00 replay_ok=true causes=check-sell-race
	// failure    DF=1.00 replay_ok=true causes=check-sell-race
	// debug-rcse DF=1.00 replay_ok=true causes=check-sell-race
}

func joinCauses(cs []string) string {
	if len(cs) == 0 {
		return "-"
	}
	return strings.Join(cs, ",")
}

// Package debugdet is a replay-debugging SDK built around the debug
// determinism model of Zamfir, Altekar, Candea and Stoica, "Debug
// Determinism: The Sweet Spot for Replay-Based Debugging" (HotOS 2011).
//
// The library implements the full determinism-relaxation spectrum the
// paper surveys — perfect, value (iDNA), output (ODR), failure (ESD) — and
// the paper's proposal: debug determinism achieved through root
// cause-driven selectivity (RCSE), which records the portions of an
// execution likely to contain a future failure's root cause at full
// fidelity while relaxing everything else. It also implements the §3.2
// debugging-utility metrics (fidelity, efficiency, utility) and ships the
// scenario corpus the paper discusses, including a Hypertable-like
// distributed key-value store with the issue-63 data-loss race of the §4
// case study and a Dynamo-style quorum-replicated KV cluster.
//
// # The SDK
//
// Debug determinism is a property developers dial in for their own
// systems, so the workload-authoring surface is public:
//
//   - debugdet/sim — the deterministic virtual machine: threads, cells,
//     locks, channels, streams and the simulated network. Programs
//     written against its Thread API are bit-reproducible from a seed.
//   - debugdet/scen — the scenario contract: program, environment,
//     failure specification, root causes; plus the Registry that catalogs
//     scenarios by name.
//   - debugdet/trace — the event model, values and codecs everything
//     shares.
//
// This root package ties them together as an Engine: a registry of
// scenarios (built-ins pre-registered) with context-aware
// record/replay/evaluate methods and a streaming batch evaluator.
//
// # Quick start
//
//	eng := debugdet.New()
//	s, _ := eng.ByName("overflow")
//	ev, _ := eng.Evaluate(context.Background(), s, debugdet.Perfect, debugdet.Options{})
//	fmt.Println(ev.Summary())
//
// Author a scenario of your own against sim/scen, eng.Register it, and
// every determinism model can record, replay and evaluate it — see
// Example_customScenario and the examples directory for complete
// programs, and DESIGN.md for the architecture and the experiment index.
//
// Architecture: DESIGN.md §0 (SDK layering) describes how this package,
// debugdet/sim, debugdet/scen, debugdet/trace and debugdet/figures fit
// together; DESIGN.md §5 covers the time-travel replay surface
// (Engine.Seek, Engine.ReplaySegmented, Engine.Debug).
package debugdet

module debugdet

go 1.23

module debugdet

go 1.22

package debugdet

import (
	"bytes"
	"testing"
)

// The root-package tests exercise the public API exactly as a downstream
// user would: catalog discovery, record, persist, replay, evaluate.

func TestPublicCatalog(t *testing.T) {
	if len(Scenarios()) < 9 {
		t.Fatalf("catalog has %d scenarios", len(Scenarios()))
	}
	// Names lists the corpus plus the fixed variants, all resolvable.
	names := ScenarioNames()
	if len(names) < len(Scenarios()) {
		t.Fatal("names and scenarios disagree")
	}
	for _, n := range names {
		if _, err := ScenarioByName(n); err != nil {
			t.Fatalf("ScenarioByName(%q): %v", n, err)
		}
	}
	if _, err := ScenarioByName("bogus"); err == nil {
		t.Fatal("accepted bogus name")
	}
}

func TestPublicModels(t *testing.T) {
	if len(Models()) != 5 {
		t.Fatalf("models = %d", len(Models()))
	}
	m, err := ParseModel("debug-rcse")
	if err != nil || m != DebugRCSE {
		t.Fatalf("ParseModel: %v %v", m, err)
	}
}

func TestPublicRecordReplayLoop(t *testing.T) {
	s, err := ScenarioByName("overflow")
	if err != nil {
		t.Fatal(err)
	}
	rec, orig, err := Record(s, Perfect, s.DefaultSeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failed, _ := s.Failure.Check(orig); !failed {
		t.Fatal("default overflow seed did not crash")
	}

	var buf bytes.Buffer
	if err := SaveRecording(&buf, rec); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}

	res := Replay(s, loaded, ReplayOptions{})
	if !res.Ok {
		t.Fatalf("replay failed: %s", res.Note)
	}
	if failed, sig := s.Failure.Check(res.View); !failed || sig != "overflow:segfault" {
		t.Fatalf("replayed failure identity: %v/%q", failed, sig)
	}
}

func TestPublicEvaluate(t *testing.T) {
	s, err := ScenarioByName("sum")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(s, DebugRCSE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Utility.DF != 1 {
		t.Fatalf("sum under RCSE: DF = %v", ev.Utility.DF)
	}
	if ev.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestHeadlineResult is the repository's one-line claim: on the paper's
// case study, debug determinism achieves value-determinism fidelity at
// near-failure-determinism cost.
func TestHeadlineResult(t *testing.T) {
	s, err := ScenarioByName("hyperkv-dataloss")
	if err != nil {
		t.Fatal(err)
	}
	rcse, err := Evaluate(s, DebugRCSE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	value, err := Evaluate(s, Value, Options{})
	if err != nil {
		t.Fatal(err)
	}
	failure, err := Evaluate(s, Failure, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rcse.Utility.DF != value.Utility.DF {
		t.Fatalf("RCSE fidelity %v != value fidelity %v", rcse.Utility.DF, value.Utility.DF)
	}
	if rcse.Utility.DF <= failure.Utility.DF {
		t.Fatalf("RCSE fidelity %v not above failure fidelity %v", rcse.Utility.DF, failure.Utility.DF)
	}
	if (rcse.Overhead-1.0)*3 > (value.Overhead - 1.0) {
		t.Fatalf("RCSE overhead %.2fx is not well below value determinism's %.2fx",
			rcse.Overhead, value.Overhead)
	}
}

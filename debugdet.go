// Package debugdet is a replay-debugging framework built around the debug
// determinism model of Zamfir, Altekar, Candea and Stoica, "Debug
// Determinism: The Sweet Spot for Replay-Based Debugging" (HotOS 2011).
//
// The library implements the full determinism-relaxation spectrum the
// paper surveys — perfect, value (iDNA), output (ODR), failure (ESD) — and
// the paper's proposal: debug determinism achieved through root
// cause-driven selectivity (RCSE), which records the portions of an
// execution likely to contain a future failure's root cause at full
// fidelity while relaxing everything else. It also implements the §3.2
// debugging-utility metrics (fidelity, efficiency, utility) and ships the
// scenario corpus the paper discusses, including a Hypertable-like
// distributed key-value store with the issue-63 data-loss race of the §4
// case study, and extends it with a Dynamo-style quorum-replicated KV
// cluster whose consistency bugs (stale reads under weak quorums,
// deleted-data resurrection, lost hinted-handoff writes) are genuinely
// distributed, timing-dependent root causes.
//
// Everything runs on a deterministic virtual machine (internal/vm):
// programs written against its thread API have every shared-state
// operation interposed, so executions are bit-reproducible from a seed —
// the property recorders and replayers need and a native Go scheduler
// cannot provide.
//
// # Quick start
//
//	s, _ := debugdet.ScenarioByName("overflow")
//	ev, _ := debugdet.Evaluate(s, debugdet.Perfect, debugdet.Options{})
//	fmt.Println(ev.Summary())
//
// See the examples directory for complete programs and DESIGN.md for the
// architecture and the experiment index.
package debugdet

import (
	"io"

	"debugdet/internal/core"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/scenario"
	"debugdet/internal/workload"
)

// Re-exported model identifiers, in the chronological order of the paper's
// Fig. 1.
const (
	Perfect   = record.Perfect
	Value     = record.Value
	Output    = record.Output
	Failure   = record.Failure
	DebugRCSE = record.DebugRCSE
)

// Core types, re-exported for the public API surface.
type (
	// Scenario describes a reproducible buggy program: its build
	// function, environment, failure specification and root causes.
	Scenario = scenario.Scenario
	// Params are scenario parameters.
	Params = scenario.Params
	// RunView is a finished execution as predicates and analyses see it.
	RunView = scenario.RunView
	// Model identifies a determinism model.
	Model = record.Model
	// Recording is the persisted artifact of a recorded production run.
	Recording = record.Recording
	// ReplayResult is a finished replay.
	ReplayResult = replay.Result
	// ReplayOptions bounds replay inference.
	ReplayOptions = replay.Options
	// Evaluation is a complete record→replay→metrics result.
	Evaluation = core.Evaluation
	// Options parameterizes an evaluation.
	Options = core.Options
	// RCSEOptions selects RCSE heuristics.
	RCSEOptions = core.RCSEOptions
)

// Models lists every determinism model.
func Models() []Model { return record.AllModels() }

// ParseModel resolves a model name ("perfect", "value", "output",
// "failure", "debug-rcse").
func ParseModel(name string) (Model, error) { return record.ParseModel(name) }

// Scenarios returns the built-in corpus: the paper's motivating examples
// (sum, overflow, msgdrop), the §4 Hypertable case study, breadth
// scenarios (bank, deadlock), and the Dynamo-style replication family
// (dynokv-staleread, dynokv-resurrect, dynokv-losthint).
func Scenarios() []*Scenario { return workload.All() }

// ScenarioNames lists the built-in scenario names.
func ScenarioNames() []string { return workload.Names() }

// ScenarioByName resolves a built-in scenario (including variants such as
// "hyperkv-fixed" or "dynokv-losthint-fixed").
func ScenarioByName(name string) (*Scenario, error) { return workload.ByName(name) }

// Record runs the scenario once under the model's recorder and returns the
// recording together with the original run. For DebugRCSE use Evaluate
// (which performs the profiling and training RCSE needs) or assemble a
// policy with the internal rcse package.
func Record(s *Scenario, model Model, seed int64, params Params) (*Recording, *RunView, error) {
	return record.Record(s, model, seed, params)
}

// Replay reconstructs an execution from a recording under the recording's
// model semantics.
func Replay(s *Scenario, rec *Recording, o ReplayOptions) *ReplayResult {
	return replay.Replay(s, rec, o)
}

// Evaluate runs the full pipeline — record, replay, metrics — for one
// scenario under one model.
func Evaluate(s *Scenario, model Model, o Options) (*Evaluation, error) {
	return core.Evaluate(s, model, o)
}

// ExploreCauses implements the paper's §5 extension: starting from only a
// failure signature (what failure determinism records), synthesize one
// execution per declared root cause that can explain the failure. The
// returned exploration reports which explanations were reachable within
// the budget.
func ExploreCauses(s *Scenario, signature string, o Options) *core.CauseExploration {
	return core.ExploreCauses(s, signature, o)
}

// SaveRecording writes a recording in the binary format.
func SaveRecording(w io.Writer, rec *Recording) error { return rec.Save(w) }

// LoadRecording reads a recording written by SaveRecording.
func LoadRecording(r io.Reader) (*Recording, error) { return record.Load(r) }

package debugdet

import (
	"io"

	"debugdet/internal/core"
	"debugdet/internal/flightrec"
	"debugdet/internal/invariant"
	"debugdet/internal/record"
	"debugdet/internal/replay"
	"debugdet/internal/workload"
	"debugdet/scen"
	"debugdet/sim"
)

// Re-exported model identifiers, in the chronological order of the paper's
// Fig. 1.
const (
	Perfect   = record.Perfect
	Value     = record.Value
	Output    = record.Output
	Failure   = record.Failure
	DebugRCSE = record.DebugRCSE
)

// Core types, re-exported for the public API surface.
type (
	// Scenario describes a reproducible buggy program: its build
	// function, environment, failure specification and root causes.
	// Authors build them against debugdet/sim and debugdet/scen.
	Scenario = scen.Scenario
	// Params are scenario parameters.
	Params = scen.Params
	// RunView is a finished execution as predicates and analyses see it.
	RunView = scen.RunView
	// Registry catalogs scenarios by name; every Engine holds one.
	Registry = scen.Registry
	// Model identifies a determinism model.
	Model = record.Model
	// Recording is the persisted artifact of a recorded production run.
	Recording = record.Recording
	// ReplayResult is a finished replay.
	ReplayResult = replay.Result
	// ReplayOptions bounds replay inference.
	ReplayOptions = replay.Options
	// SeekSession is a replay positioned part-way through a recording by
	// Engine.Seek: a paused, inspectable machine plus seek provenance.
	SeekSession = replay.SeekSession
	// SegmentedResult is a finished segmented parallel replay
	// (Engine.ReplaySegmented).
	SegmentedResult = replay.SegmentedResult
	// DebugSession is an interactive time-travel session over a recording
	// (Engine.Debug): step / seek / back / inspect.
	DebugSession = replay.Debugger
	// DebugOptions configures a DebugSession.
	DebugOptions = replay.DebugOptions
	// SegmentStore is the segment-store contract the seek, segmented and
	// debug paths consume in place of a monolithic Recording: a flight
	// recorder's spill directory (OpenSegmentStore) or any other
	// implementation.
	SegmentStore = flightrec.Store
	// StoreMeta is a segment store's run identity.
	StoreMeta = flightrec.Meta
	// SegmentInfo describes one checkpoint-delimited segment of a store.
	SegmentInfo = flightrec.SegmentInfo
	// FlightRecorderOptions configures Engine.RecordStreaming's bounded-
	// memory recording (Options.FlightRecorder): rotation interval,
	// in-memory ring size, spill directory and on-disk retention.
	FlightRecorderOptions = flightrec.Options
	// FlightRecording is a finished streaming recording: the reopened
	// segment store plus the recorder's accounting (peak memory, spill
	// and eviction counts, byte volumes).
	FlightRecording = flightrec.RecordResult
	// DiskSegmentStore is the SegmentStore implementation over a spill
	// directory, with the on-disk extras (Finalized, FeedCount,
	// FeedBytes) the generic interface does not carry.
	DiskSegmentStore = flightrec.DiskStore
	// Snapshot is one deterministic VM state checkpoint as persisted in a
	// recording (Recording.Checkpoints); see debugdet/sim for the full
	// snapshot vocabulary.
	Snapshot = sim.Snapshot
	// Evaluation is a complete record→replay→metrics result.
	Evaluation = core.Evaluation
	// Options parameterizes an evaluation.
	Options = core.Options
	// RCSEOptions selects RCSE heuristics.
	RCSEOptions = core.RCSEOptions
	// CauseExploration is the result of the §5 root-cause enumeration.
	CauseExploration = core.CauseExploration
	// InvariantSet is a set of likely invariants learned from healthy
	// runs (the data-based RCSE selector's training artifact).
	InvariantSet = invariant.Set
)

// Models lists every determinism model.
func Models() []Model { return record.AllModels() }

// ParseModel resolves a model name ("perfect", "value", "output",
// "failure", "debug-rcse").
func ParseModel(name string) (Model, error) { return record.ParseModel(name) }

// TrainInvariants learns likely invariants from healthy executions of the
// scenario, one per seed — the training step of the data-based RCSE
// selector (§3.1.2), exposed for programs that want to inspect or monitor
// the invariants themselves. The runs use the scenario's TrainingParams
// (the healthy build) over the given parameter overrides, exactly like
// Options.RCSE.InvariantTrigger does inside Evaluate.
func TrainInvariants(s *Scenario, seeds []int64, params Params) *InvariantSet {
	inf := invariant.NewInferencer()
	train := params.Clone(s.TrainingParams)
	for _, seed := range seeds {
		v := s.Exec(scen.ExecOptions{Seed: seed, Params: train})
		if v.Trace != nil {
			inf.AddTrace(v.Trace)
		}
	}
	return inf.Infer()
}

// SaveRecording writes a recording in the binary format.
func SaveRecording(w io.Writer, rec *Recording) error { return rec.Save(w) }

// LoadRecording reads a recording written by SaveRecording.
func LoadRecording(r io.Reader) (*Recording, error) { return record.Load(r) }

// Deprecated one-shot API
//
// The functions below predate the Engine and remain for one release as
// thin shims. They always operate on the built-in corpus and cannot see
// user-registered scenarios.

// Scenarios returns the built-in corpus.
//
// Deprecated: use New().Scenarios, which also lists user-registered
// scenarios.
func Scenarios() []*Scenario { return workload.All() }

// ScenarioNames lists the built-in scenario names.
//
// Deprecated: use New().Names.
func ScenarioNames() []string { return workload.Names() }

// ScenarioByName resolves a built-in scenario (including variants such as
// "hyperkv-fixed" or "dynokv-losthint-fixed").
//
// Deprecated: use New().ByName.
func ScenarioByName(name string) (*Scenario, error) { return workload.ByName(name) }

// Record runs the scenario once under the model's recorder and returns the
// recording together with the original run. For DebugRCSE use
// Engine.Record, which performs the profiling and training RCSE needs,
// configured by Options.RCSE.
//
// Deprecated: use Engine.Record, which is context-aware and supports
// DebugRCSE.
func Record(s *Scenario, model Model, seed int64, params Params) (*Recording, *RunView, error) {
	return record.Record(s, model, seed, params)
}

// Replay reconstructs an execution from a recording under the recording's
// model semantics.
//
// Deprecated: use Engine.Replay.
func Replay(s *Scenario, rec *Recording, o ReplayOptions) *ReplayResult {
	return replay.Replay(s, rec, o)
}

// Evaluate runs the full pipeline — record, replay, metrics — for one
// scenario under one model.
//
// Deprecated: use Engine.Evaluate.
func Evaluate(s *Scenario, model Model, o Options) (*Evaluation, error) {
	return core.Evaluate(s, model, o)
}

// ExploreCauses synthesizes one execution per declared root cause that can
// explain the failure signature (§5).
//
// Deprecated: use Engine.ExploreCauses.
func ExploreCauses(s *Scenario, signature string, o Options) *CauseExploration {
	return core.ExploreCauses(s, signature, o)
}

// Command figures regenerates the paper's figures and tables (see the
// experiment index in DESIGN.md) and prints them as text. EXPERIMENTS.md
// records this command's output next to the paper's numbers.
//
// Usage:
//
//	figures -all
//	figures -fig 1
//	figures -fig 2
//	figures -table df|overhead|plane|du|triggers|dynokv|disk|fuzz|ckpt|stat|fork
//	figures -table fuzz -gen 1234 # rerun a generator seed from go test -fuzz
//	figures -budget 100           # bound inference attempts per cell
//	figures -workers 4            # cell-grid parallelism (default GOMAXPROCS, 1 = sequential)
package main

import (
	"flag"
	"fmt"
	"os"

	"debugdet/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1 or 2)")
	table := flag.String("table", "", "table to regenerate (df, overhead, plane, du, triggers, dynokv, disk, fuzz, ckpt, stat, fork)")
	all := flag.Bool("all", false, "regenerate everything")
	budget := flag.Int("budget", 0, "inference budget per cell (default 200)")
	workers := flag.Int("workers", 0, "concurrent cells (default GOMAXPROCS; results are identical for any value)")
	genVal := flag.Int64("gen", 0, "generator seed for -table fuzz (omit for the pinned failing defaults)")
	ckpt := flag.Int64("ckpt", 0, "checkpoint interval for perfect-model cells (0 = off; affects -table overhead)")
	flag.Parse()
	// Distinguish "-gen 0" (a real fuzzer seed) from an absent flag.
	var gen *int64
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "gen" {
			gen = genVal
		}
	})

	o := figures.Options{ReplayBudget: *budget, Workers: *workers, CheckpointInterval: *ckpt}
	if !*all && *fig == 0 && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var fig2Cells []figures.Cell
	needFig2 := *all || *fig == 2 || *table == "df" || *table == "overhead"
	if needFig2 {
		run("fig2", func() error {
			cells, err := figures.Fig2(o)
			fig2Cells = cells
			return err
		})
	}

	if *all || *fig == 1 || *table == "du" {
		var rows []figures.Fig1Row
		run("fig1", func() error {
			r, err := figures.Fig1(o)
			rows = r
			return err
		})
		if *all || *fig == 1 {
			fmt.Println(figures.RenderFig1(rows))
		}
		if *all || *table == "du" {
			var shrink figures.Cell
			run("shrink", func() error {
				c, err := figures.ShrinkCell(o)
				shrink = c
				return err
			})
			fmt.Println(figures.TableDU(rows, shrink))
		}
	}
	if *all || *fig == 2 {
		fmt.Println(figures.RenderFig2(fig2Cells))
	}
	if *all || *table == "df" {
		fmt.Println(figures.TableDF(fig2Cells))
	}
	if *all || *table == "overhead" {
		fmt.Println(figures.TableOverhead(fig2Cells))
	}
	if *all || *table == "plane" {
		run("plane", func() error {
			rows, err := figures.TablePlane(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTablePlane(rows))
			return nil
		})
	}
	if *all || *table == "dynokv" {
		run("dynokv", func() error {
			cells, err := figures.TableDynoKV(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableDynoKV(cells))
			return nil
		})
	}
	if *all || *table == "disk" {
		run("disk", func() error {
			cells, err := figures.TableDisk(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableDisk(cells))
			return nil
		})
	}
	if *all || *table == "fuzz" {
		run("fuzz", func() error {
			cells, err := figures.TableFuzz(o, gen)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableFuzz(cells, gen))
			return nil
		})
	}
	if *all || *table == "ckpt" {
		run("ckpt", func() error {
			rows, err := figures.TableCheckpoint(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableCheckpoint(rows))
			return nil
		})
	}
	if *all || *table == "triggers" {
		run("triggers", func() error {
			rows, err := figures.TableTriggers(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableTriggers(rows))
			return nil
		})
	}
	if *all || *table == "stat" {
		run("stat", func() error {
			rows, err := figures.TableStat(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableStat(rows))
			return nil
		})
	}
	if *all || *table == "fork" {
		run("fork", func() error {
			rows, err := figures.TableFork(o)
			if err != nil {
				return err
			}
			fmt.Println(figures.RenderTableFork(rows))
			return nil
		})
	}
}

// Command figures regenerates the paper's figures and tables (see the
// experiment index in DESIGN.md) and prints them as text. EXPERIMENTS.md
// records this command's output next to the paper's numbers.
//
// Usage:
//
//	figures -all
//	figures -fig 1
//	figures -fig 2
//	figures -table df|overhead|plane|du|triggers|dynokv
//	figures -budget 100           # bound inference attempts per cell
//	figures -workers 4            # cell-grid parallelism (default GOMAXPROCS, 1 = sequential)
package main

import (
	"flag"
	"fmt"
	"os"

	"debugdet/internal/eval"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1 or 2)")
	table := flag.String("table", "", "table to regenerate (df, overhead, plane, du, triggers, dynokv)")
	all := flag.Bool("all", false, "regenerate everything")
	budget := flag.Int("budget", 0, "inference budget per cell (default 200)")
	workers := flag.Int("workers", 0, "concurrent cells (default GOMAXPROCS; results are identical for any value)")
	flag.Parse()

	o := eval.Options{ReplayBudget: *budget, Workers: *workers}
	if !*all && *fig == 0 && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var fig2Cells []eval.Cell
	needFig2 := *all || *fig == 2 || *table == "df" || *table == "overhead"
	if needFig2 {
		run("fig2", func() error {
			cells, err := eval.Fig2(o)
			fig2Cells = cells
			return err
		})
	}

	if *all || *fig == 1 || *table == "du" {
		var rows []eval.Fig1Row
		run("fig1", func() error {
			r, err := eval.Fig1(o)
			rows = r
			return err
		})
		if *all || *fig == 1 {
			fmt.Println(eval.RenderFig1(rows))
		}
		if *all || *table == "du" {
			var shrink eval.Cell
			run("shrink", func() error {
				c, err := eval.ShrinkCell(o)
				shrink = c
				return err
			})
			fmt.Println(eval.TableDU(rows, shrink))
		}
	}
	if *all || *fig == 2 {
		fmt.Println(eval.RenderFig2(fig2Cells))
	}
	if *all || *table == "df" {
		fmt.Println(eval.TableDF(fig2Cells))
	}
	if *all || *table == "overhead" {
		fmt.Println(eval.TableOverhead(fig2Cells))
	}
	if *all || *table == "plane" {
		run("plane", func() error {
			rows, err := eval.TablePlane(o)
			if err != nil {
				return err
			}
			fmt.Println(eval.RenderTablePlane(rows))
			return nil
		})
	}
	if *all || *table == "dynokv" {
		run("dynokv", func() error {
			cells, err := eval.TableDynoKV(o)
			if err != nil {
				return err
			}
			fmt.Println(eval.RenderTableDynoKV(cells))
			return nil
		})
	}
	if *all || *table == "triggers" {
		run("triggers", func() error {
			rows, err := eval.TableTriggers(o)
			if err != nil {
				return err
			}
			fmt.Println(eval.RenderTableTriggers(rows))
			return nil
		})
	}
}

// Command dynokv runs the Dynamo-style quorum-replicated KV workloads
// standalone: stale reads under weak quorums, deleted-data resurrection
// under premature tombstone GC, and acknowledged-write loss under
// non-durable hinted handoff. Sweep seeds to watch each bug manifest, or
// evaluate one scenario under every determinism model.
//
// Usage:
//
//	dynokv -scenario staleread -seed 3
//	dynokv -scenario resurrect -sweep 50
//	dynokv -scenario losthint -fixed -sweep 50
//	dynokv -scenario staleread -eval
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"debugdet"
	"debugdet/scen"
)

func main() {
	name := flag.String("scenario", "staleread", "staleread, resurrect, losthint, disk-tornwal, disk-fsyncloss or disk-snapres")
	seed := flag.Int64("seed", -1, "scheduler seed (default: the scenario's)")
	fixed := flag.Bool("fixed", false, "run the fixed variant")
	sweep := flag.Int64("sweep", 0, "run seeds [0,n) and summarize failures")
	eval := flag.Bool("eval", false, "evaluate under every determinism model")
	budget := flag.Int("budget", 120, "inference budget per model for -eval")
	flag.Parse()

	eng := debugdet.New(debugdet.WithReplayBudget(*budget))
	full := *name
	if *fixed {
		full += "-fixed"
	}
	// Short names refer to the dynokv family; the durable disk scenarios
	// (disk-tornwal, disk-fsyncloss, disk-snapres) are registered under
	// their full names and resolve verbatim.
	s, err := eng.ByName(full)
	if err != nil {
		s, err = eng.ByName("dynokv-" + full)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynokv: %v\n", err)
		os.Exit(1)
	}

	if *sweep > 0 {
		failures := 0
		for sd := int64(0); sd < *sweep; sd++ {
			v := s.Exec(scen.ExecOptions{Seed: sd})
			if failed, _ := s.CheckFailure(v); failed {
				failures++
				fmt.Printf("seed=%-4d FAIL %s causes=%v\n", sd, s.RunStats(v), s.PresentCauses(v))
			}
		}
		fmt.Printf("%d/%d seeds failed\n", failures, *sweep)
		return
	}

	if *eval {
		// The batch engine streams each (scenario, model) cell as it
		// finishes; models evaluate concurrently across the worker pool.
		jobs := debugdet.GridJobs([]string{full}, debugdet.Models())
		for res, err := range eng.EvaluateBatch(context.Background(), jobs) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "dynokv: evaluate %s: %v\n", res.Job.Model, err)
				os.Exit(1)
			}
			fmt.Println(res.Evaluation.Summary())
		}
		return
	}

	sd := *seed
	if sd < 0 {
		sd = s.DefaultSeed
	}
	v := s.Exec(scen.ExecOptions{Seed: sd})
	failed, sig := s.CheckFailure(v)
	fmt.Printf("run: %s\n", s.RunStats(v))
	fmt.Printf("events=%d cycles=%d\n", v.Result.Steps, v.Result.Cycles)
	if failed {
		fmt.Printf("FAILURE %s — root causes present: %v\n", sig, s.PresentCauses(v))
	} else {
		fmt.Println("no failure observed")
	}
}

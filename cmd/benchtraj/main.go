// Command benchtraj maintains the repository's per-PR benchmark
// trajectory. It reads `go test -bench` output on stdin, parses the
// result lines, appends the run to a trajectory file (one JSON array
// entry per CI run), and compares the measured ns/op against a reference
// snapshot, failing when any tracked benchmark regressed beyond the
// threshold:
//
//	go test -run '^$' -bench 'VMStepThroughput|CheckpointSeek|FlightRecorder' -benchmem |
//	    benchtraj -label "$GITHUB_SHA" -trajectory BENCH_trajectory.json \
//	              -against BENCH_after.json -threshold 25
//
// Stdin is echoed through to stdout, so the raw benchmark output stays in
// the CI log. Benchmarks absent from the reference are new: they are not
// compared (there is nothing to compare against) and are instead adopted
// into the reference snapshot as fresh entries, so the next run has a
// baseline. Reference entries absent from stdin are ignored (the smoke
// run benches a subset). Either file flag may be empty to skip that half
// of the job.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"time"
)

// mark is one parsed benchmark result, in the same shape the BENCH_*.json
// snapshots use.
type mark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// run is one trajectory entry: a labeled, timestamped set of marks.
type run struct {
	Label      string `json:"label"`
	Recorded   string `json:"recorded"`
	Benchmarks []mark `json:"benchmarks"`
}

// reference mirrors the BENCH_after.json / BENCH_baseline.json layout;
// only the benchmark list matters here.
type reference struct {
	Benchmarks []mark `json:"benchmarks"`
}

// benchLine matches a go-test benchmark result: name, iteration count,
// ns/op, and optionally -benchmem's B/op and allocs/op columns.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "label recorded with the trajectory entry")
	trajectory := flag.String("trajectory", "", "trajectory file to append this run to (empty = skip)")
	against := flag.String("against", "", "reference snapshot to compare ns/op against (empty = skip)")
	threshold := flag.Float64("threshold", 25, "allowed ns/op regression in percent")
	flag.Parse()

	marks, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(marks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}
	if *trajectory != "" {
		if err := appendRun(*trajectory, *label, marks); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchtraj: appended %d benchmarks to %s\n", len(marks), *trajectory)
	}
	if *against != "" {
		regressions, fresh, err := compare(*against, marks, *threshold)
		if err != nil {
			fatal(err)
		}
		if len(fresh) > 0 {
			if err := adoptNew(*against, fresh); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchtraj: adopted %d new benchmark(s) into %s\n",
				len(fresh), *against)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchtraj: %d regression(s) beyond %.0f%% vs %s:\n",
				len(regressions), *threshold, *against)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchtraj: no ns/op regression beyond %.0f%% vs %s\n",
			*threshold, *against)
	}
}

// parse scans benchmark output, echoing every line to stdout and
// collecting the result lines.
func parse(f *os.File) ([]mark, error) {
	var marks []mark
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op on %q: %w", line, err)
		}
		mk := mark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			mk.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			mk.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		marks = append(marks, mk)
	}
	return marks, sc.Err()
}

// appendRun adds one labeled entry to the trajectory file, creating it on
// first use. The file is a JSON array so the whole history stays one
// parseable document.
func appendRun(path, label string, marks []mark) error {
	var history []run
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &history); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	history = append(history, run{
		Label:      label,
		Recorded:   time.Now().UTC().Format(time.RFC3339),
		Benchmarks: marks,
	})
	data, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare checks each measured benchmark against the reference snapshot,
// describing every ns/op regression beyond the threshold percent.
// Benchmarks with no baseline (absent from the reference, or a zero/
// negative ns/op that would make the percentage meaningless) are returned
// separately for adoption — a new benchmark must never read as a
// regression.
func compare(path string, marks []mark, threshold float64) (regressions []string, fresh []mark, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var ref reference
	if err := json.Unmarshal(data, &ref); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	base := make(map[string]float64, len(ref.Benchmarks))
	for _, b := range ref.Benchmarks {
		base[b.Name] = b.NsPerOp
	}
	for _, m := range marks {
		old, ok := base[m.Name]
		if !ok || old <= 0 {
			fmt.Fprintf(os.Stderr, "benchtraj: %s has no baseline in %s; adopting as a new entry\n", m.Name, path)
			fresh = append(fresh, m)
			continue
		}
		pct := (m.NsPerOp - old) / old * 100
		if pct > threshold {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs %.0f (%+.1f%%)", m.Name, m.NsPerOp, old, pct))
		}
	}
	return regressions, fresh, nil
}

// adoptNew appends benchmarks that had no baseline to the reference
// snapshot's benchmark list, preserving every other field of the document
// (command, label, cpu, ...), so the next comparison has a baseline for
// them. A measured entry that merely replaces a zero-ns/op baseline is
// appended too; compare's baseline map keeps the last occurrence of a
// name, so the stale zero entry is simply shadowed.
func adoptNew(path string, fresh []mark) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var benches []mark
	if raw, ok := doc["benchmarks"]; ok {
		if err := json.Unmarshal(raw, &benches); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	benches = append(benches, fresh...)
	raw, err := json.Marshal(benches)
	if err != nil {
		return err
	}
	doc["benchmarks"] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtraj:", err)
	os.Exit(1)
}

// Command docslint enforces the documentation contract of the public SDK
// surface: every public package (and internal/checkpoint and
// internal/flightrec, the subsystems DESIGN.md §5-§6 document) must carry
// a package comment, and every exported symbol of the public packages
// must have a godoc comment. CI runs it as the docs-lint job; it exits
// non-zero listing the misses.
//
// The checker deliberately reads source, not compiled packages, so it
// needs no build context beyond the repository checkout:
//
//	go run ./cmd/docslint
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// target is one package directory to lint. Exported-symbol coverage is
// enforced for the public SDK surface; internal packages listed here only
// need their package comment (their symbol docs are a convention, not a
// contract).
type target struct {
	dir      string
	exported bool
}

var targets = []target{
	{".", true},
	{"sim", true},
	{"scen", true},
	{"trace", true},
	{"figures", true},
	{"internal/checkpoint", false},
	{"internal/flightrec", false},
	{"internal/simdisk", false},
}

func main() {
	var problems []string
	for _, tgt := range targets {
		probs, err := lint(tgt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %s: %v\n", tgt.dir, err)
			os.Exit(1)
		}
		problems = append(problems, probs...)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d undocumented items:\n", len(problems))
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "  "+p)
		}
		os.Exit(1)
	}
	fmt.Printf("docslint: %d packages clean\n", len(targets))
}

// lint parses one directory and reports its documentation misses.
func lint(tgt target) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, tgt.dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var probs []string
	for name, astPkg := range pkgs {
		if name == "main" {
			continue
		}
		// doc.New mutates the AST; fine, each package is parsed once.
		dp := doc.New(astPkg, "./"+tgt.dir, 0)
		at := func(sym string) string { return filepath.Join(tgt.dir, "...") + ": " + sym }
		if strings.TrimSpace(dp.Doc) == "" {
			probs = append(probs, at("package "+name+" has no package comment"))
		}
		if !tgt.exported {
			continue
		}
		for _, v := range append(append([]*doc.Value(nil), dp.Consts...), dp.Vars...) {
			if hasExportedName(v.Names) && strings.TrimSpace(v.Doc) == "" {
				probs = append(probs, at(strings.Join(exportedNames(v.Names), ", ")))
			}
		}
		for _, f := range dp.Funcs {
			if token.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
				probs = append(probs, at("func "+f.Name))
			}
		}
		for _, tp := range dp.Types {
			probs = append(probs, lintType(tgt.dir, tp)...)
		}
	}
	return probs, nil
}

// lintType reports doc misses on a type, its grouped declarations, its
// constructors and its methods.
func lintType(dir string, tp *doc.Type) []string {
	var probs []string
	at := func(sym string) string { return filepath.Join(dir, "...") + ": " + sym }
	if token.IsExported(tp.Name) && strings.TrimSpace(tp.Doc) == "" {
		// A type declared inside a documented group declaration still
		// needs its own comment: group docs don't attach to members.
		if !specHasDoc(tp) {
			probs = append(probs, at("type "+tp.Name))
		}
	}
	for _, v := range append(append([]*doc.Value(nil), tp.Consts...), tp.Vars...) {
		if hasExportedName(v.Names) && strings.TrimSpace(v.Doc) == "" {
			probs = append(probs, at(strings.Join(exportedNames(v.Names), ", ")))
		}
	}
	for _, f := range append(append([]*doc.Func(nil), tp.Funcs...), tp.Methods...) {
		if token.IsExported(f.Name) && strings.TrimSpace(f.Doc) == "" {
			probs = append(probs, at("func "+f.Name+" (type "+tp.Name+")"))
		}
	}
	return probs
}

// specHasDoc reports whether the type's own spec carries a doc or line
// comment (the case for members of grouped type declarations, where
// doc.Type.Doc is empty but the spec is documented).
func specHasDoc(tp *doc.Type) bool {
	if tp.Decl == nil {
		return false
	}
	for _, spec := range tp.Decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok || ts.Name == nil || ts.Name.Name != tp.Name {
			continue
		}
		if ts.Doc != nil && strings.TrimSpace(ts.Doc.Text()) != "" {
			return true
		}
		if ts.Comment != nil && strings.TrimSpace(ts.Comment.Text()) != "" {
			return true
		}
	}
	return false
}

func hasExportedName(names []string) bool {
	for _, n := range names {
		if token.IsExported(n) {
			return true
		}
	}
	return false
}

func exportedNames(names []string) []string {
	var out []string
	for _, n := range names {
		if token.IsExported(n) {
			out = append(out, n)
		}
	}
	return out
}

// Command detlint runs the repository's determinism-lint suite (DESIGN.md
// §8) over package patterns:
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -only nondet,lockorder ./internal/vm
//
// The suite checks exhaustive handling of trace event/value kinds
// (evexhaustive), determinism-contract violations in the VM and replay
// packages (nondet), inconsistent lock acquisition orders across thread
// bodies (lockorder), the SDK boundary for commands and examples
// (sdkpurity), and godoc coverage of the public surface (docs).
//
// Findings print one per line as file:line:col: analyzer: message, and the
// command exits 1 when any exist — CI runs it as the static-analysis job.
// A run failure (pattern typo, unbuildable source) exits 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"debugdet/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer filter (default: the whole suite)")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		lint.Print(os.Stderr, findings)
		fmt.Fprintf(os.Stderr, "detlint: %d findings\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("detlint: clean")
}

// Command hyperkv runs the Hypertable-like key-value store workload
// standalone: load rows from concurrent clients while the master migrates
// ranges, then dump and verify. With -fixed=false (the default) the
// §4 data-loss race is armed; sweep seeds to watch it manifest.
//
// Usage:
//
//	hyperkv -seed 19
//	hyperkv -clients 4 -rows 32 -migrations 3 -sweep 50
//	hyperkv -fixed -sweep 50
package main

import (
	"flag"
	"fmt"
	"os"

	"debugdet"
	"debugdet/scen"
)

func main() {
	seed := flag.Int64("seed", 19, "scheduler seed")
	clients := flag.Int64("clients", 3, "loader clients")
	rows := flag.Int64("rows", 16, "rows per client")
	servers := flag.Int64("servers", 3, "range servers")
	ranges := flag.Int64("ranges", 6, "key ranges")
	migrations := flag.Int64("migrations", 2, "migrations during load")
	fixed := flag.Bool("fixed", false, "apply the fix (lock around commit/migrate)")
	sweep := flag.Int64("sweep", 0, "run seeds [0,n) and summarize failures")
	flag.Parse()

	s, err := debugdet.New().ByName("hyperkv-dataloss")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hyperkv: %v\n", err)
		os.Exit(1)
	}
	params := scen.Params{
		"clients": *clients, "rows": *rows, "servers": *servers,
		"ranges": *ranges, "migrations": *migrations,
	}
	if *fixed {
		params["fixed"] = 1
	}

	if *sweep > 0 {
		failures := 0
		for sd := int64(0); sd < *sweep; sd++ {
			v := s.Exec(scen.ExecOptions{Seed: sd, Params: params})
			if failed, _ := s.CheckFailure(v); failed {
				failures++
				fmt.Printf("seed=%-4d FAIL %s causes=%v\n", sd, s.RunStats(v), s.PresentCauses(v))
			}
		}
		fmt.Printf("%d/%d seeds lost rows\n", failures, *sweep)
		return
	}

	v := s.Exec(scen.ExecOptions{Seed: *seed, Params: params})
	failed, sig := s.CheckFailure(v)
	fmt.Printf("run: %s\n", s.RunStats(v))
	fmt.Printf("events=%d cycles=%d\n", v.Result.Steps, v.Result.Cycles)
	if failed {
		fmt.Printf("FAILURE %s — root causes present: %v\n", sig, s.PresentCauses(v))
	} else {
		fmt.Println("no failure: all acked rows visible in the dump")
	}
}

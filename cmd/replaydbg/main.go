// Command replaydbg is the replay debugger's CLI: record a scenario under
// a determinism model, replay a recording (front-to-back, seeked, or as an
// interactive time-travel session), or run the full evaluation pipeline
// with metrics.
//
// The usage text is generated from the command table below, so the help
// can never drift from the actual verb set. Run "replaydbg help" (or any
// unknown verb/flag) for the synopsis; unknown flags exit with status 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"debugdet"
)

var eng = debugdet.New()

// opts carries every flag any command accepts; each command registers only
// the flags it uses, so unknown flags fail fast.
type opts struct {
	scenario string
	model    string
	seed     int64
	out      string
	in       string
	budget   int
	ckpt     int64
	to       uint64
	script   string
	spill    string
	ring     int
	retain   int
}

// flag registration helpers, composed per command.
func scenarioFlag(fs *flag.FlagSet, o *opts) {
	fs.StringVar(&o.scenario, "scenario", "", "scenario name (see 'replaydbg list')")
}
func modelFlag(fs *flag.FlagSet, o *opts) {
	fs.StringVar(&o.model, "model", "perfect", "determinism model")
}
func seedFlag(fs *flag.FlagSet, o *opts) {
	fs.Int64Var(&o.seed, "seed", 0, "scheduler seed (0 = scenario default)")
}
func outFlag(fs *flag.FlagSet, o *opts) {
	fs.StringVar(&o.out, "out", "", "recording output path")
}
func inFlag(fs *flag.FlagSet, o *opts) {
	fs.StringVar(&o.in, "in", "", "recording input path")
}
func budgetFlag(fs *flag.FlagSet, o *opts) {
	fs.IntVar(&o.budget, "budget", 200, "inference budget for relaxed-model replay")
}
func ckptFlag(fs *flag.FlagSet, o *opts) {
	fs.Int64Var(&o.ckpt, "ckpt", 0, "checkpoint interval in events (0 = off for record, default for debug/seek; negative rejected)")
}
func toFlag(fs *flag.FlagSet, o *opts) {
	fs.Uint64Var(&o.to, "to", 0, "target event to seek to")
}
func scriptFlag(fs *flag.FlagSet, o *opts) {
	fs.StringVar(&o.script, "script", "", "semicolon-separated debug commands to run instead of reading stdin")
}
func spillFlag(fs *flag.FlagSet, o *opts) {
	fs.StringVar(&o.spill, "spill", "", "spill directory: record with the always-on flight recorder instead of an in-memory recording")
}
func ringFlag(fs *flag.FlagSet, o *opts) {
	fs.IntVar(&o.ring, "ring", 0, "flight recorder: sealed segments kept in memory (0 = default)")
}
func retainFlag(fs *flag.FlagSet, o *opts) {
	fs.IntVar(&o.retain, "retain", 0, "flight recorder: spilled segments kept on disk (0 = keep all)")
}

// command is one CLI verb. Usage text and dispatch both derive from the
// table, so adding a verb here is the single step that makes it exist.
type command struct {
	name     string
	synopsis string
	flags    []func(*flag.FlagSet, *opts)
	run      func(o *opts)
}

// commands is populated in init: the "help" entry prints the table it
// lives in, which a declaration-time initializer would make a cycle.
var commands []command

func init() {
	commands = []command{
		{"list", "list the scenario corpus", nil,
			func(*opts) { runList() }},
		{"record", "record a production run under a determinism model",
			[]func(*flag.FlagSet, *opts){scenarioFlag, modelFlag, seedFlag, outFlag, ckptFlag, spillFlag, ringFlag, retainFlag},
			func(o *opts) { runRecord(o) }},
		{"replay", "replay a recording front-to-back",
			[]func(*flag.FlagSet, *opts){scenarioFlag, inFlag, budgetFlag},
			func(o *opts) { runReplay(o.scenario, o.in, o.budget) }},
		{"seek", "jump to an event of a recording and show the state there",
			[]func(*flag.FlagSet, *opts){scenarioFlag, inFlag, toFlag},
			func(o *opts) { runSeek(o.scenario, o.in, o.to) }},
		{"debug", "interactive time-travel session over a recording",
			[]func(*flag.FlagSet, *opts){scenarioFlag, inFlag, seedFlag, ckptFlag, scriptFlag},
			func(o *opts) { runDebug(o.scenario, o.in, o.seed, o.ckpt, o.script) }},
		{"eval", "run the record → replay → metrics pipeline",
			[]func(*flag.FlagSet, *opts){scenarioFlag, modelFlag, seedFlag, budgetFlag},
			func(o *opts) { runEval(o.scenario, o.model, o.seed, o.budget) }},
		{"causes", "enumerate root causes explaining the failure signature",
			[]func(*flag.FlagSet, *opts){scenarioFlag, budgetFlag},
			func(o *opts) { runCauses(o.scenario, o.budget) }},
		{"show", "print a recording's summary and first events",
			[]func(*flag.FlagSet, *opts){inFlag},
			func(o *opts) { runShow(o.in) }},
		{"info", "print a recording file's or spill directory's checkpoint and segment summary",
			[]func(*flag.FlagSet, *opts){inFlag},
			func(o *opts) { runInfo(o.in) }},
		{"help", "print this usage text", nil,
			func(*opts) { usage(os.Stdout) }},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	name := os.Args[1]
	for i := range commands {
		cmd := &commands[i]
		if cmd.name != name {
			continue
		}
		var o opts
		fs := flag.NewFlagSet(cmd.name, flag.ContinueOnError)
		for _, reg := range cmd.flags {
			reg(fs, &o)
		}
		if err := fs.Parse(os.Args[2:]); err != nil {
			usage(os.Stderr)
			os.Exit(2)
		}
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "replaydbg %s: unexpected argument %q\n", cmd.name, fs.Arg(0))
			usage(os.Stderr)
			os.Exit(2)
		}
		cmd.run(&o)
		return
	}
	fmt.Fprintf(os.Stderr, "replaydbg: unknown command %q\n", name)
	usage(os.Stderr)
	os.Exit(2)
}

// usage renders the verb table.
func usage(w *os.File) {
	names := make([]string, len(commands))
	for i, c := range commands {
		names[i] = c.name
	}
	fmt.Fprintf(w, "usage: replaydbg <%s> [flags]\n\n", strings.Join(names, "|"))
	for _, c := range commands {
		fmt.Fprintf(w, "  %-8s %s\n", c.name, c.synopsis)
	}
	fmt.Fprintln(w, "\nRun any command with -h for its flags.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replaydbg:", err)
	os.Exit(1)
}

func mustScenario(name string) *debugdet.Scenario {
	if name == "" {
		fatal(fmt.Errorf("missing -scenario"))
	}
	s, err := eng.ByName(name)
	if err != nil {
		fatal(err)
	}
	return s
}

func loadRecording(path string) *debugdet.Recording {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec, err := debugdet.LoadRecording(f)
	if err != nil {
		fatal(err)
	}
	return rec
}

func runList() {
	for _, s := range eng.Scenarios() {
		fmt.Printf("%-18s seed=%-4d %s\n", s.Name, s.DefaultSeed, s.Description)
	}
}

// runCauses implements the paper's §5 extension: enumerate every root
// cause that can explain the scenario's failure, from the signature alone.
func runCauses(scenarioName string, budget int) {
	ctx := context.Background()
	s := mustScenario(scenarioName)
	// Obtain the signature the way failure determinism would: from the
	// recorded failing run's bug report.
	rec, _, err := eng.Record(ctx, s, debugdet.Failure, debugdet.Options{})
	if err != nil {
		fatal(err)
	}
	if !rec.Failed {
		fatal(fmt.Errorf("default seed does not fail; nothing to explain"))
	}
	fmt.Printf("failure signature: %q\n", rec.FailureSig)
	ex, err := eng.ExploreCauses(ctx, s, rec.FailureSig, debugdet.Options{ReplayBudget: budget})
	if err != nil {
		fatal(err)
	}
	fmt.Println(ex.Summary())
	ids := make([]string, 0, len(ex.Found))
	for id := range ex.Found {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := ex.Found[id]
		fmt.Printf("  %-18s synthesized in %d steps (outcome %s)\n",
			id, v.Result.Steps, v.Result.Outcome)
	}
	for _, id := range ex.Missing {
		fmt.Printf("  %-18s NOT reachable within budget\n", id)
	}
}

func runRecord(o *opts) {
	s := mustScenario(o.scenario)
	if o.spill != "" {
		runRecordStreaming(s, o)
		return
	}
	model, err := debugdet.ParseModel(o.model)
	if err != nil {
		fatal(err)
	}
	rec, view, err := eng.Record(context.Background(), s, model, debugdet.Options{
		Seed:               o.seed,
		CheckpointInterval: o.ckpt,
	})
	if err != nil {
		fatal(err)
	}
	failed, sig := s.Failure.Check(view)
	fmt.Printf("recorded: %s\n", rec.Summary())
	if len(rec.Checkpoints) > 0 {
		fmt.Printf("checkpoints: %d every %d events (%d bytes)\n",
			len(rec.Checkpoints), o.ckpt, rec.CheckpointBytes)
	}
	fmt.Printf("original run: outcome=%s failed=%v sig=%q causes=%v\n",
		view.Result.Outcome, failed, sig, s.PresentCauses(view))
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := debugdet.SaveRecording(f, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", o.out)
	}
}

// runRecordStreaming records with the always-on flight recorder: segments
// rotate through a bounded in-memory ring and spill to -spill; nothing
// else of the run is kept in memory.
func runRecordStreaming(s *debugdet.Scenario, o *opts) {
	if o.model != "" && o.model != "perfect" {
		fatal(fmt.Errorf("-spill records under the perfect model (streaming needs the complete event stream); drop -model %s", o.model))
	}
	fr, err := eng.RecordStreaming(context.Background(), s, debugdet.Options{
		Seed:               o.seed,
		CheckpointInterval: o.ckpt,
		FlightRecorder: &debugdet.FlightRecorderOptions{
			SpillDir:     o.spill,
			RingSegments: o.ring,
			Retention:    o.retain,
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flight-recorded %s: %d events in %d segments (%d spilled, %d evicted)\n",
		s.Name, fr.Events, fr.Segments, fr.Spilled, fr.Evicted)
	fmt.Printf("bytes: log=%d checkpoints=%d feed-log=%d; peak recorder memory %d\n",
		fr.LogBytes, fr.CheckpointBytes, fr.FeedBytes, fr.PeakMemBytes)
	fmt.Printf("original run: failed=%v sig=%q\n", fr.Failed, fr.FailureSig)
	fmt.Printf("wrote %s (use 'replaydbg info|seek|debug -in %s')\n", o.spill, o.spill)
}

func runReplay(scenarioName, in string, budget int) {
	if in == "" {
		fatal(fmt.Errorf("missing -in recording path"))
	}
	rec := loadRecording(in)
	name := scenarioName
	if name == "" {
		name = rec.Scenario
	}
	s := mustScenario(name)
	res, err := eng.Replay(context.Background(), s, rec, debugdet.ReplayOptions{Budget: budget})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay: ok=%v attempts=%d note=%s\n", res.Ok, res.Attempts, res.Note)
	if res.View != nil {
		failed, sig := s.Failure.Check(res.View)
		fmt.Printf("replayed run: outcome=%s failed=%v sig=%q causes=%v\n",
			res.View.Result.Outcome, failed, sig, s.PresentCauses(res.View))
	}
}

// runSeek jumps to an event and prints the machine state there: the
// non-interactive face of time travel, and what the debug REPL's seek
// does.
func runSeek(scenarioName, in string, target uint64) {
	if in == "" {
		fatal(fmt.Errorf("missing -in recording path"))
	}
	if isDir(in) {
		runSeekStore(scenarioName, in, target)
		return
	}
	rec := loadRecording(in)
	name := scenarioName
	if name == "" {
		name = rec.Scenario
	}
	s := mustScenario(name)
	sess, err := eng.Seek(context.Background(), s, rec, target, debugdet.ReplayOptions{})
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	from := "start (no checkpoint ≤ target)"
	if sess.FromCheckpoint {
		from = fmt.Sprintf("checkpoint @%d", sess.SuffixFrom)
	}
	fmt.Printf("position %d/%d, restored from %s, replayed %d events\n",
		sess.Pos(), rec.EventCount, from, sess.ReplaySteps)
	printThreads(sess.Machine)
}

// runSeekStore is runSeek over a flight recorder's spill directory.
func runSeekStore(scenarioName, dir string, target uint64) {
	st, err := debugdet.OpenSegmentStore(dir)
	if err != nil {
		fatal(err)
	}
	name := scenarioName
	if name == "" {
		name = st.Meta().Scenario
	}
	s := mustScenario(name)
	sess, err := eng.SeekStore(context.Background(), s, st, target, debugdet.ReplayOptions{})
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	from := "start (no retained checkpoint ≤ target)"
	if sess.FromCheckpoint {
		from = fmt.Sprintf("checkpoint @%d", sess.SuffixFrom)
	}
	fmt.Printf("position %d/%d, restored from %s, replayed %d events\n",
		sess.Pos(), st.Meta().EventCount, from, sess.ReplaySteps)
	printThreads(sess.Machine)
}

// isDir reports whether path exists and is a directory (a flight
// recorder's spill directory rather than a .ddrc recording file).
func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func runEval(scenarioName, modelName string, seed int64, budget int) {
	s := mustScenario(scenarioName)
	model, err := debugdet.ParseModel(modelName)
	if err != nil {
		fatal(err)
	}
	ev, err := eng.Evaluate(context.Background(), s, model, debugdet.Options{
		Seed:         seed,
		ReplayBudget: budget,
		RCSE:         debugdet.RCSEOptions{RaceTrigger: true},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(ev.Summary())
	fmt.Printf("recording: %s\n", ev.Recording.Summary())
	fmt.Printf("fidelity:  %s\n", ev.Fidelity)
	fmt.Printf("replay:    ok=%v note=%s\n", ev.Replay.Ok, ev.Replay.Note)
}

func runShow(in string) {
	if in == "" {
		fatal(fmt.Errorf("missing -in recording path"))
	}
	rec := loadRecording(in)
	fmt.Println(rec.Summary())
	fmt.Printf("streams: %v\n", rec.Streams)
	if n := len(rec.Checkpoints); n > 0 {
		seqs := make([]uint64, n)
		for i, cp := range rec.Checkpoints {
			seqs[i] = cp.Seq
		}
		fmt.Printf("checkpoints: %d at %v (%d bytes)\n", n, seqs, rec.CheckpointBytes)
	}
	fmt.Printf("first events (of %d):\n", len(rec.Full))
	for i, e := range rec.Full {
		if i >= 20 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", e)
	}
}

// runInfo prints the checkpoint/segment structure of a recording file or
// a flight recorder's spill directory. A nonexistent path is a usage
// error (status 2), matching unknown verbs and flags.
func runInfo(in string) {
	if in == "" {
		fatal(fmt.Errorf("missing -in path (a .ddrc recording or a spill directory)"))
	}
	if _, err := os.Stat(in); err != nil {
		fmt.Fprintf(os.Stderr, "replaydbg info: %v\n", err)
		usage(os.Stderr)
		os.Exit(2)
	}
	if isDir(in) {
		infoStore(in)
		return
	}
	rec := loadRecording(in)
	fmt.Println(rec.Summary())
	fmt.Printf("checkpoints: %d (%d bytes)\n", len(rec.Checkpoints), rec.CheckpointBytes)
	bounds := rec.SegmentBounds()
	fmt.Printf("segments: %d\n", len(bounds))
	for i, from := range bounds {
		to := rec.EventCount
		if i+1 < len(bounds) {
			to = bounds[i+1]
		}
		fmt.Printf("  %3d  [%8d, %8d)  %8d events\n", i, from, to, to-from)
	}
}

// infoStore prints a spill directory's manifest summary. A directory that
// is not a readable spill directory — empty, missing its manifest, or
// holding a truncated one — is a usage error (status 2) like a
// nonexistent path, not an internal failure.
func infoStore(dir string) {
	st, err := debugdet.OpenSegmentStore(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replaydbg info: %s is not a flight-recorder spill directory: %v\n", dir, err)
		os.Exit(2)
	}
	meta := st.Meta()
	fmt.Printf("flight recording: %s model=%s seed=%d events=%d interval=%d finalized=%v\n",
		meta.Scenario, meta.Model, meta.Seed, meta.EventCount, meta.Interval, st.Finalized())
	fmt.Printf("terminal: failed=%v sig=%q; streams=%v\n", meta.Failed, meta.FailureSig, meta.Streams)
	fmt.Printf("feed log: %d entries, %d bytes (full-run seekability floor)\n", st.FeedCount(), st.FeedBytes())
	segs := st.Segments()
	lo, hi := uint64(0), uint64(0)
	if len(segs) > 0 {
		lo, hi = segs[0].From, segs[len(segs)-1].To
	}
	fmt.Printf("retained segments: %d covering [%d, %d); checkpoints at %v\n",
		len(segs), lo, hi, st.SnapshotSeqs())
	for _, si := range segs {
		fmt.Printf("  %3d  [%8d, %8d)  %8d events  %8d bytes  %s\n",
			si.Index, si.From, si.To, si.Events(), si.Bytes, si.File)
	}
}

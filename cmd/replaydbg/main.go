// Command replaydbg is the replay debugger's CLI: record a scenario under
// a determinism model, replay a recording, or run the full evaluation
// pipeline with metrics.
//
// Usage:
//
//	replaydbg list
//	replaydbg record -scenario overflow -model perfect -seed 2 -out run.ddrc
//	replaydbg replay -scenario overflow -in run.ddrc
//	replaydbg eval   -scenario hyperkv-dataloss -model debug-rcse
//	replaydbg causes -scenario hyperkv-dataloss
//	replaydbg show   -in run.ddrc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"debugdet"
)

var eng = debugdet.New()

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scenarioName := fs.String("scenario", "", "scenario name (see 'replaydbg list')")
	modelName := fs.String("model", "perfect", "determinism model")
	seed := fs.Int64("seed", 0, "scheduler seed (0 = scenario default)")
	out := fs.String("out", "", "recording output path")
	in := fs.String("in", "", "recording input path")
	budget := fs.Int("budget", 200, "inference budget for relaxed-model replay")
	fs.Parse(os.Args[2:])

	switch cmd {
	case "list":
		for _, s := range eng.Scenarios() {
			fmt.Printf("%-18s seed=%-4d %s\n", s.Name, s.DefaultSeed, s.Description)
		}
	case "record":
		runRecord(*scenarioName, *modelName, *seed, *out)
	case "replay":
		runReplay(*scenarioName, *in, *budget)
	case "eval":
		runEval(*scenarioName, *modelName, *seed, *budget)
	case "causes":
		runCauses(*scenarioName, *budget)
	case "show":
		runShow(*in)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: replaydbg <list|record|replay|eval|causes|show> [flags]")
}

// runCauses implements the paper's §5 extension: enumerate every root
// cause that can explain the scenario's failure, from the signature alone.
func runCauses(scenarioName string, budget int) {
	ctx := context.Background()
	s := mustScenario(scenarioName)
	// Obtain the signature the way failure determinism would: from the
	// recorded failing run's bug report.
	rec, _, err := eng.Record(ctx, s, debugdet.Failure, debugdet.Options{})
	if err != nil {
		fatal(err)
	}
	if !rec.Failed {
		fatal(fmt.Errorf("default seed does not fail; nothing to explain"))
	}
	fmt.Printf("failure signature: %q\n", rec.FailureSig)
	ex, err := eng.ExploreCauses(ctx, s, rec.FailureSig, debugdet.Options{ReplayBudget: budget})
	if err != nil {
		fatal(err)
	}
	fmt.Println(ex.Summary())
	for id, v := range ex.Found {
		fmt.Printf("  %-18s synthesized in %d steps (outcome %s)\n",
			id, v.Result.Steps, v.Result.Outcome)
	}
	for _, id := range ex.Missing {
		fmt.Printf("  %-18s NOT reachable within budget\n", id)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replaydbg:", err)
	os.Exit(1)
}

func mustScenario(name string) *debugdet.Scenario {
	if name == "" {
		fatal(fmt.Errorf("missing -scenario"))
	}
	s, err := eng.ByName(name)
	if err != nil {
		fatal(err)
	}
	return s
}

func runRecord(scenarioName, modelName string, seed int64, out string) {
	s := mustScenario(scenarioName)
	model, err := debugdet.ParseModel(modelName)
	if err != nil {
		fatal(err)
	}
	rec, view, err := eng.Record(context.Background(), s, model, debugdet.Options{Seed: seed})
	if err != nil {
		fatal(err)
	}
	failed, sig := s.Failure.Check(view)
	fmt.Printf("recorded: %s\n", rec.Summary())
	fmt.Printf("original run: outcome=%s failed=%v sig=%q causes=%v\n",
		view.Result.Outcome, failed, sig, s.PresentCauses(view))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := debugdet.SaveRecording(f, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

func runReplay(scenarioName, in string, budget int) {
	if in == "" {
		fatal(fmt.Errorf("missing -in recording path"))
	}
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec, err := debugdet.LoadRecording(f)
	if err != nil {
		fatal(err)
	}
	name := scenarioName
	if name == "" {
		name = rec.Scenario
	}
	s := mustScenario(name)
	res, err := eng.Replay(context.Background(), s, rec, debugdet.ReplayOptions{Budget: budget})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay: ok=%v attempts=%d note=%s\n", res.Ok, res.Attempts, res.Note)
	if res.View != nil {
		failed, sig := s.Failure.Check(res.View)
		fmt.Printf("replayed run: outcome=%s failed=%v sig=%q causes=%v\n",
			res.View.Result.Outcome, failed, sig, s.PresentCauses(res.View))
	}
}

func runEval(scenarioName, modelName string, seed int64, budget int) {
	s := mustScenario(scenarioName)
	model, err := debugdet.ParseModel(modelName)
	if err != nil {
		fatal(err)
	}
	ev, err := eng.Evaluate(context.Background(), s, model, debugdet.Options{
		Seed:         seed,
		ReplayBudget: budget,
		RCSE:         debugdet.RCSEOptions{RaceTrigger: true},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(ev.Summary())
	fmt.Printf("recording: %s\n", ev.Recording.Summary())
	fmt.Printf("fidelity:  %s\n", ev.Fidelity)
	fmt.Printf("replay:    ok=%v note=%s\n", ev.Replay.Ok, ev.Replay.Note)
}

func runShow(in string) {
	if in == "" {
		fatal(fmt.Errorf("missing -in recording path"))
	}
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec, err := debugdet.LoadRecording(f)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rec.Summary())
	fmt.Printf("streams: %v\n", rec.Streams)
	fmt.Printf("first events (of %d):\n", len(rec.Full))
	for i, e := range rec.Full {
		if i >= 20 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", e)
	}
}

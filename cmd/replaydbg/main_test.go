package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The test binary doubles as the CLI: when re-exec'd with the marker
// environment variable it runs main() on its own arguments, so the tests
// below exercise real exit codes without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("REPLAYDBG_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI re-execs the test binary as replaydbg and returns its combined
// output and exit status.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "REPLAYDBG_BE_CLI=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("replaydbg %v: %v", args, err)
	}
	return string(out), ee.ExitCode()
}

// TestRecordSpillCreatesDir: -spill pointing at a missing nested directory
// creates it, and info reads the result back.
func TestRecordSpillCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "nested", "spill")
	out, code := runCLI(t, "record", "-scenario", "bank", "-spill", dir)
	if code != 0 {
		t.Fatalf("record -spill exited %d:\n%s", code, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.ddmf")); err != nil {
		t.Fatalf("no manifest in created spill dir: %v", err)
	}
	out, code = runCLI(t, "info", "-in", dir)
	if code != 0 || !strings.Contains(out, "flight recording: bank") {
		t.Fatalf("info on fresh spill dir exited %d:\n%s", code, out)
	}
}

// TestInfoBadSpillDirIsUsageError: a directory that is not a readable
// spill directory — empty, or holding a truncated manifest — exits with
// status 2 and a diagnostic, like a nonexistent path; never a panic.
func TestInfoBadSpillDirIsUsageError(t *testing.T) {
	empty := t.TempDir()
	out, code := runCLI(t, "info", "-in", empty)
	if code != 2 || !strings.Contains(out, "not a flight-recorder spill directory") {
		t.Fatalf("info on empty dir exited %d:\n%s", code, out)
	}

	partial := t.TempDir()
	if err := os.WriteFile(filepath.Join(partial, "manifest.ddmf"), []byte("DDMF"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runCLI(t, "info", "-in", partial)
	if code != 2 || !strings.Contains(out, "not a flight-recorder spill directory") {
		t.Fatalf("info on truncated manifest exited %d:\n%s", code, out)
	}

	out, code = runCLI(t, "info", "-in", filepath.Join(empty, "nope"))
	if code != 2 {
		t.Fatalf("info on nonexistent path exited %d:\n%s", code, out)
	}
}

// TestRecordRejectsNegativeKnobs: negative -ring/-retain are rejected
// before the spill directory is created.
func TestRecordRejectsNegativeKnobs(t *testing.T) {
	for _, tc := range []struct{ flag, field string }{
		{"-ring", "RingSegments"},
		{"-retain", "Retention"},
	} {
		dir := filepath.Join(t.TempDir(), "spill")
		out, code := runCLI(t, "record", "-scenario", "bank", "-spill", dir, tc.flag, "-1")
		if code == 0 || !strings.Contains(out, tc.field) {
			t.Fatalf("record %s -1 exited %d:\n%s", tc.flag, code, out)
		}
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Fatalf("rejected record still created %s", dir)
		}
	}
}

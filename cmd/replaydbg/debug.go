package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"debugdet"
	"debugdet/sim"
	"debugdet/trace"
)

// runDebug opens the interactive time-travel session: a small REPL over
// Engine.Debug. It reads commands from stdin (or -script, semicolon
// separated, for non-interactive use — the CI smoke test drives it that
// way), so it works both at a terminal and scripted.
func runDebug(scenarioName, in string, seed int64, ckpt int64, script string) {
	if ckpt < 0 {
		fatal(fmt.Errorf("-ckpt must not be negative (got %d; 0 means the default interval)", ckpt))
	}
	var d *debugdet.DebugSession
	var s *debugdet.Scenario
	var err error
	switch {
	case in != "" && isDir(in):
		// A flight recorder's spill directory: debug over the segment
		// store, no monolithic recording in memory.
		st, oerr := debugdet.OpenSegmentStore(in)
		if oerr != nil {
			fatal(oerr)
		}
		name := scenarioName
		if name == "" {
			name = st.Meta().Scenario
		}
		s = mustScenario(name)
		d, err = eng.DebugStore(context.Background(), s, st, debugdet.DebugOptions{Interval: uint64(ckpt)})
	case in != "":
		rec := loadRecording(in)
		name := scenarioName
		if name == "" {
			name = rec.Scenario
		}
		s = mustScenario(name)
		d, err = eng.Debug(context.Background(), s, rec, debugdet.DebugOptions{Interval: uint64(ckpt)})
	default:
		// No recording on disk: record the scenario's default failing run
		// under the perfect model on the fly, checkpointed.
		s = mustScenario(scenarioName)
		interval := ckpt
		if interval == 0 {
			interval = 64
		}
		var rec *debugdet.Recording
		rec, _, err = eng.Record(context.Background(), s, debugdet.Perfect, debugdet.Options{
			Seed:               seed,
			CheckpointInterval: interval,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %s: %d events, %d checkpoints\n", s.Name, rec.EventCount, len(rec.Checkpoints))
		d, err = eng.Debug(context.Background(), s, rec, debugdet.DebugOptions{Interval: uint64(ckpt)})
	}
	if err != nil {
		fatal(err)
	}
	defer d.Close()

	fmt.Printf("time-travel debugger: %s, %d events, checkpoints at %v\n",
		s.Name, d.Len(), d.Checkpoints())
	fmt.Println(`type "help" for commands`)

	var input io.Reader = os.Stdin
	if script != "" {
		input = strings.NewReader(strings.ReplaceAll(script, ";", "\n"))
	}
	// In scripted (non-interactive) mode a failed command fails the
	// process, so CI smoke drivers need only check the exit status.
	errs := 0
	finish := func() {
		if script != "" && errs > 0 {
			d.Close()
			fatal(fmt.Errorf("%d debug command(s) failed", errs))
		}
	}
	sc := bufio.NewScanner(input)
	for {
		fmt.Printf("(ddbg @%d) ", d.Pos())
		if !sc.Scan() {
			fmt.Println()
			finish()
			return
		}
		// Semicolons separate commands on a line, so piped one-liners
		// ("step 2; threads; quit") work the same as -script.
		for _, part := range strings.Split(sc.Text(), ";") {
			fields := strings.Fields(part)
			if len(fields) == 0 {
				continue
			}
			cmd, args := fields[0], fields[1:]
			if cmd == "quit" || cmd == "q" || cmd == "exit" {
				finish()
				return
			}
			if err := debugCommand(d, cmd, args); err != nil {
				errs++
				fmt.Printf("error: %v\n", err)
			}
		}
	}
}

// debugCommand dispatches one REPL command against the session.
func debugCommand(d *debugdet.DebugSession, cmd string, args []string) error {
	argN := func(def uint64) (uint64, error) {
		if len(args) == 0 {
			return def, nil
		}
		return strconv.ParseUint(args[0], 10, 64)
	}
	switch cmd {
	case "help", "h":
		fmt.Print(`commands:
  step [n]   (s)  execute the next n events (default 1)
  back [n]   (b)  rewind n events (default 1; re-executes from a checkpoint)
  seek <ev>       jump to event ev
  run             run to the end of the recording
  where      (w)  show the cursor and the next recorded event
  threads    (t)  list threads and what they are blocked on
  cells      (c)  dump shared-memory cells
  chans           dump channel buffers
  locks           dump mutex owners
  trace [n]       show n recorded events around the cursor (default 8)
  ckpts           list checkpoint positions
  quit       (q)  leave the debugger
`)
	case "step", "s":
		n, err := argN(1)
		if err != nil {
			return err
		}
		if err := d.Step(n); err != nil {
			return err
		}
		return where(d)
	case "back", "b":
		n, err := argN(1)
		if err != nil {
			return err
		}
		if err := d.Back(n); err != nil {
			return err
		}
		return where(d)
	case "seek":
		if len(args) == 0 {
			return fmt.Errorf("seek needs a target event")
		}
		to, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return err
		}
		if err := d.SeekTo(to); err != nil {
			return err
		}
		return where(d)
	case "run":
		if err := d.SeekTo(d.Len()); err != nil {
			return err
		}
		return where(d)
	case "where", "w":
		return where(d)
	case "threads", "t":
		printThreads(d.Machine())
	case "cells", "c":
		m := d.Machine()
		for i := 0; i < m.NumCells(); i++ {
			id := trace.ObjID(i)
			fmt.Printf("  %-24s = %v\n", m.CellName(id), m.CellValue(id))
		}
	case "chans":
		m := d.Machine()
		for i := 0; i < m.NumChans(); i++ {
			id := trace.ObjID(i)
			fmt.Printf("  %-24s len=%d %v\n", m.ChanName(id), m.ChanLen(id), m.ChanValues(id))
		}
	case "locks":
		m := d.Machine()
		for i := 0; i < m.NumMutexes(); i++ {
			id := trace.ObjID(i)
			owner := "free"
			if tid := m.MutexOwner(id); tid >= 0 {
				owner = fmt.Sprintf("held by %d (%s)", tid, m.ThreadName(tid))
			}
			fmt.Printf("  %-24s %s\n", m.MutexName(id), owner)
		}
	case "trace":
		n, err := argN(8)
		if err != nil {
			return err
		}
		lo := uint64(0)
		if d.Pos() > n/2 {
			lo = d.Pos() - n/2
		}
		for _, e := range d.Events(lo, lo+n) {
			marker := "  "
			if e.Seq == d.Pos() {
				marker = "=>"
			}
			fmt.Printf("%s %v\n", marker, e)
		}
	case "ckpts":
		fmt.Printf("  %v\n", d.Checkpoints())
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// where prints the cursor position and the next recorded event.
func where(d *debugdet.DebugSession) error {
	if ev, ok := d.Event(); ok {
		fmt.Printf("at %d/%d, next: %v\n", d.Pos(), d.Len(), ev)
	} else {
		fmt.Printf("at %d/%d (end of recording)\n", d.Pos(), d.Len())
	}
	return nil
}

// printThreads renders the thread table of a paused machine.
func printThreads(m *sim.Machine) {
	for _, ti := range m.Threads() {
		kind := ""
		if ti.Daemon {
			kind = " [daemon]"
		}
		fmt.Printf("  %3d %-16s%s %s\n", ti.ID, ti.Name, kind, ti.Status)
	}
}
